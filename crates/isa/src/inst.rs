//! Static instructions: classes, latencies, dependencies and memory patterns.

use std::fmt;

use crate::addr::Addr;

/// The kind of a control-transfer instruction.
///
/// The taxonomy matches what the paper's front-ends distinguish:
/// conditional branches are direction-predicted; calls/returns drive the
/// return address stack (RAS); indirect jumps/calls have data-dependent
/// targets that only a target predictor (BTB / FTB / next-stream table) can
/// guess. Unconditional direct jumps and calls are always taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchKind {
    /// Conditional direct branch: taken or not-taken, static target.
    Cond,
    /// Unconditional direct jump: always taken, static target.
    Jump,
    /// Direct call: always taken, pushes a return address.
    Call,
    /// Return: always taken, target comes from the call stack.
    Return,
    /// Indirect jump (e.g. switch dispatch): always taken, variable target.
    IndirectJump,
    /// Indirect call (e.g. virtual dispatch): always taken, variable target,
    /// pushes a return address.
    IndirectCall,
}

impl BranchKind {
    /// Whether this branch kind can fall through (only conditionals can).
    #[inline]
    pub const fn is_conditional(self) -> bool {
        matches!(self, BranchKind::Cond)
    }

    /// Whether the target is data-dependent (unknowable from the static
    /// instruction alone).
    #[inline]
    pub const fn is_indirect(self) -> bool {
        matches!(
            self,
            BranchKind::Return | BranchKind::IndirectJump | BranchKind::IndirectCall
        )
    }

    /// Whether executing this branch pushes a return address on the RAS.
    #[inline]
    pub const fn pushes_return(self) -> bool {
        matches!(self, BranchKind::Call | BranchKind::IndirectCall)
    }

    /// Whether this branch pops the RAS.
    #[inline]
    pub const fn pops_return(self) -> bool {
        matches!(self, BranchKind::Return)
    }
}

impl fmt::Display for BranchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BranchKind::Cond => "cond",
            BranchKind::Jump => "jump",
            BranchKind::Call => "call",
            BranchKind::Return => "ret",
            BranchKind::IndirectJump => "ijump",
            BranchKind::IndirectCall => "icall",
        };
        f.write_str(s)
    }
}

/// Functional class of an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstClass {
    /// Single-cycle integer ALU operation.
    IntAlu,
    /// Multi-cycle integer multiply/divide-like operation.
    IntMul,
    /// Floating-point operation (rare in the SPECint-like workloads).
    FpAlu,
    /// Memory load; latency depends on the data cache.
    Load,
    /// Memory store; retires through the data cache.
    Store,
    /// Control transfer of the given kind.
    Branch(BranchKind),
    /// No-operation (padding).
    Nop,
}

impl InstClass {
    /// Base execution latency in cycles, excluding memory-hierarchy time.
    ///
    /// Loads report `1`; the simulator adds the D-cache access latency on
    /// top when the access resolves.
    #[inline]
    pub const fn base_latency(self) -> u32 {
        match self {
            InstClass::IntAlu | InstClass::Nop | InstClass::Store => 1,
            InstClass::IntMul => 3,
            InstClass::FpAlu => 2,
            InstClass::Load => 1,
            InstClass::Branch(_) => 1,
        }
    }

    /// Whether this is any control-transfer instruction.
    #[inline]
    pub const fn is_branch(self) -> bool {
        matches!(self, InstClass::Branch(_))
    }

    /// The branch kind, if this is a control transfer.
    #[inline]
    pub const fn branch_kind(self) -> Option<BranchKind> {
        match self {
            InstClass::Branch(k) => Some(k),
            _ => None,
        }
    }
}

impl fmt::Display for InstClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstClass::IntAlu => f.write_str("alu"),
            InstClass::IntMul => f.write_str("mul"),
            InstClass::FpAlu => f.write_str("fp"),
            InstClass::Load => f.write_str("ld"),
            InstClass::Store => f.write_str("st"),
            InstClass::Branch(k) => write!(f, "br.{k}"),
            InstClass::Nop => f.write_str("nop"),
        }
    }
}

/// A distance-coded register dependency.
///
/// Rather than modelling an architectural register file, each instruction
/// names the *k-th previous dynamic instruction* as its producer — the
/// standard trace-driven abstraction: dependence distance distributions,
/// not register names, determine the exploitable ILP. `DepDistance::NONE`
/// (distance 0) means "no dependency".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct DepDistance(u8);

impl DepDistance {
    /// No dependency.
    pub const NONE: DepDistance = DepDistance(0);
    /// Largest representable distance.
    pub const MAX: DepDistance = DepDistance(u8::MAX);

    /// Creates a dependency on the `d`-th previous dynamic instruction
    /// (`d == 0` means no dependency).
    #[inline]
    pub const fn new(d: u8) -> Self {
        DepDistance(d)
    }

    /// Raw distance; `0` means none.
    #[inline]
    pub const fn get(self) -> u8 {
        self.0
    }

    /// Whether a producer exists.
    #[inline]
    pub const fn is_some(self) -> bool {
        self.0 != 0
    }
}

/// Deterministic synthetic address stream for one static memory instruction.
///
/// The dynamic address of the `k`-th execution of the instruction is
/// `base + stride * (k mod span)` — a strided walk over a bounded footprint,
/// which yields controllable L1D hit rates without storing data traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemPattern {
    /// First byte address of the footprint.
    pub base: Addr,
    /// Stride between successive accesses, in bytes.
    pub stride: u32,
    /// Number of distinct access slots before the walk wraps.
    pub span: u32,
}

impl MemPattern {
    /// Creates a pattern; `span` is clamped to at least 1.
    pub fn new(base: Addr, stride: u32, span: u32) -> Self {
        MemPattern { base, stride, span: span.max(1) }
    }

    /// Address of the `k`-th dynamic access.
    #[inline]
    pub fn address(&self, k: u64) -> Addr {
        Addr::new(self.base.get() + u64::from(self.stride) * (k % u64::from(self.span)))
    }
}

/// One instruction of the static program image.
///
/// `StaticInst` is `Copy`-cheap and carries everything the simulator needs:
/// the functional class, up to two distance-coded input dependencies, and
/// the synthetic address pattern for memory operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StaticInst {
    class: InstClass,
    dep1: DepDistance,
    dep2: DepDistance,
    mem: Option<MemPattern>,
}

impl StaticInst {
    /// Creates a non-memory, non-branch instruction with no dependencies.
    pub const fn simple(class: InstClass) -> Self {
        StaticInst { class, dep1: DepDistance::NONE, dep2: DepDistance::NONE, mem: None }
    }

    /// Creates a branch instruction of the given kind.
    pub const fn branch(kind: BranchKind) -> Self {
        Self::simple(InstClass::Branch(kind))
    }

    /// Creates an instruction with explicit dependency distances.
    pub const fn with_deps(class: InstClass, dep1: DepDistance, dep2: DepDistance) -> Self {
        StaticInst { class, dep1, dep2, mem: None }
    }

    /// Creates a memory instruction (load or store) with its address pattern.
    ///
    /// # Panics
    ///
    /// Panics if `class` is not [`InstClass::Load`] or [`InstClass::Store`].
    pub fn memory(class: InstClass, pattern: MemPattern, dep1: DepDistance) -> Self {
        assert!(
            matches!(class, InstClass::Load | InstClass::Store),
            "memory() requires Load or Store, got {class}"
        );
        StaticInst { class, dep1, dep2: DepDistance::NONE, mem: Some(pattern) }
    }

    /// Functional class.
    #[inline]
    pub const fn class(&self) -> InstClass {
        self.class
    }

    /// First input dependency (distance-coded).
    #[inline]
    pub const fn dep1(&self) -> DepDistance {
        self.dep1
    }

    /// Second input dependency (distance-coded).
    #[inline]
    pub const fn dep2(&self) -> DepDistance {
        self.dep2
    }

    /// Memory access pattern, if this is a load/store.
    #[inline]
    pub const fn mem_pattern(&self) -> Option<MemPattern> {
        self.mem
    }

    /// Whether this is any control transfer.
    #[inline]
    pub const fn is_branch(&self) -> bool {
        self.class.is_branch()
    }

    /// Whether this is a conditional branch.
    #[inline]
    pub fn is_cond_branch(&self) -> bool {
        self.class.branch_kind().is_some_and(BranchKind::is_conditional)
    }

    /// Branch kind, if any.
    #[inline]
    pub const fn branch_kind(&self) -> Option<BranchKind> {
        self.class.branch_kind()
    }
}

impl Default for StaticInst {
    fn default() -> Self {
        StaticInst::simple(InstClass::IntAlu)
    }
}

impl fmt::Display for StaticInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.class)?;
        if self.dep1.is_some() || self.dep2.is_some() {
            write!(f, " [d{},d{}]", self.dep1.get(), self.dep2.get())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_kind_predicates() {
        assert!(BranchKind::Cond.is_conditional());
        assert!(!BranchKind::Jump.is_conditional());
        assert!(BranchKind::Return.is_indirect());
        assert!(BranchKind::IndirectCall.is_indirect());
        assert!(!BranchKind::Call.is_indirect());
        assert!(BranchKind::Call.pushes_return());
        assert!(BranchKind::IndirectCall.pushes_return());
        assert!(BranchKind::Return.pops_return());
        assert!(!BranchKind::Jump.pops_return());
    }

    #[test]
    fn latencies_are_positive_and_ordered() {
        assert_eq!(InstClass::IntAlu.base_latency(), 1);
        assert!(InstClass::IntMul.base_latency() > InstClass::IntAlu.base_latency());
        for c in [
            InstClass::IntAlu,
            InstClass::IntMul,
            InstClass::FpAlu,
            InstClass::Load,
            InstClass::Store,
            InstClass::Branch(BranchKind::Cond),
            InstClass::Nop,
        ] {
            assert!(c.base_latency() >= 1, "{c} must take at least a cycle");
        }
    }

    #[test]
    fn mem_pattern_wraps_over_span() {
        let p = MemPattern::new(Addr::new(0x1_0000), 64, 4);
        assert_eq!(p.address(0), Addr::new(0x1_0000));
        assert_eq!(p.address(3), Addr::new(0x1_0000 + 192));
        assert_eq!(p.address(4), Addr::new(0x1_0000));
        assert_eq!(p.address(7), p.address(3));
    }

    #[test]
    fn mem_pattern_clamps_zero_span() {
        let p = MemPattern::new(Addr::new(0), 8, 0);
        assert_eq!(p.span, 1);
        assert_eq!(p.address(5), Addr::new(0));
    }

    #[test]
    fn static_inst_accessors() {
        let ld = StaticInst::memory(
            InstClass::Load,
            MemPattern::new(Addr::new(0x8000), 8, 128),
            DepDistance::new(2),
        );
        assert_eq!(ld.class(), InstClass::Load);
        assert!(ld.mem_pattern().is_some());
        assert!(ld.dep1().is_some());
        assert!(!ld.dep2().is_some());
        assert!(!ld.is_branch());

        let br = StaticInst::branch(BranchKind::Cond);
        assert!(br.is_branch());
        assert!(br.is_cond_branch());
        assert_eq!(br.branch_kind(), Some(BranchKind::Cond));
    }

    #[test]
    #[should_panic(expected = "memory() requires")]
    fn memory_ctor_rejects_non_memory_class() {
        StaticInst::memory(InstClass::IntAlu, MemPattern::new(Addr::new(0), 4, 4), DepDistance::NONE);
    }

    #[test]
    fn display_formats() {
        assert_eq!(StaticInst::simple(InstClass::IntAlu).to_string(), "alu");
        assert_eq!(StaticInst::branch(BranchKind::Return).to_string(), "br.ret");
        let dep = StaticInst::with_deps(InstClass::IntMul, DepDistance::new(1), DepDistance::new(4));
        assert_eq!(dep.to_string(), "mul [d1,d4]");
    }

    #[test]
    fn dep_distance_semantics() {
        assert!(!DepDistance::NONE.is_some());
        assert!(DepDistance::new(1).is_some());
        assert_eq!(DepDistance::default(), DepDistance::NONE);
        assert_eq!(DepDistance::MAX.get(), 255);
    }
}
