//! Minimal byte-exact serialization helpers ("wire" codec).
//!
//! The warm-state banking path (see `sfetch-sample`) persists predictor and
//! cache state between daemon runs. Those structures live in several crates,
//! so the encoding primitives sit here at the bottom of the workspace: a
//! little-endian length-checked writer/reader pair with `String` errors in
//! the same style as the checkpoint codec in `sfetch-trace`.
//!
//! Determinism is part of the contract: encoding the same logical state must
//! produce the same bytes (callers sort any hash-ordered collections before
//! writing), because stored entries are content-digested and compared.
//!
//! ```
//! use sfetch_isa::wire::{WireReader, WireWriter};
//!
//! let mut w = WireWriter::new();
//! w.u64(7);
//! w.bytes(b"abc");
//! let buf = w.into_bytes();
//! let mut r = WireReader::new(&buf);
//! assert_eq!(r.u64().unwrap(), 7);
//! assert_eq!(r.bytes().unwrap(), b"abc");
//! r.finish().unwrap();
//! ```

use crate::{Addr, BranchKind};

/// Append-only little-endian byte writer.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes a `u64` (little-endian).
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u32` (little-endian).
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a single byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a bool as one byte (0/1).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Writes an address as its raw `u64`.
    pub fn addr(&mut self, a: Addr) {
        self.u64(a.get());
    }

    /// Writes a branch kind as a one-byte code (see [`branch_kind_code`]).
    pub fn branch_kind(&mut self, k: Option<BranchKind>) {
        self.u8(branch_kind_code(k));
    }

    /// Writes a length-prefixed byte slice.
    pub fn bytes(&mut self, b: &[u8]) {
        self.u64(b.len() as u64);
        self.buf.extend_from_slice(b);
    }

    /// Writes a `u64` slice as a length prefix plus elements.
    pub fn u64_slice(&mut self, xs: &[u64]) {
        self.u64(xs.len() as u64);
        for &x in xs {
            self.u64(x);
        }
    }
}

/// Cursor over an encoded byte buffer; every read is bounds-checked.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Current read position (for error reporting).
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.remaining() < n {
            return Err(format!(
                "wire data truncated at byte {} (wanted {n}, have {})",
                self.pos,
                self.remaining()
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, String> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, String> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool; rejects bytes other than 0/1.
    pub fn bool(&mut self) -> Result<bool, String> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(format!("wire bool has invalid value {v}")),
        }
    }

    /// Reads an address.
    pub fn addr(&mut self) -> Result<Addr, String> {
        Ok(Addr::new(self.u64()?))
    }

    /// Reads a branch-kind code byte (see [`branch_kind_from_code`]).
    pub fn branch_kind(&mut self) -> Result<Option<BranchKind>, String> {
        branch_kind_from_code(self.u8()?)
    }

    /// Reads a length-prefixed byte slice.
    pub fn bytes(&mut self) -> Result<&'a [u8], String> {
        let n = self.u64()?;
        let n = usize::try_from(n).map_err(|_| format!("wire length {n} overflows"))?;
        self.take(n)
    }

    /// Reads a length-prefixed `u64` vector.
    pub fn u64_vec(&mut self) -> Result<Vec<u64>, String> {
        let n = self.u64()?;
        let n = usize::try_from(n).map_err(|_| format!("wire length {n} overflows"))?;
        if self.remaining() < n.saturating_mul(8) {
            return Err(format!(
                "wire data truncated at byte {}: u64 vec of {n} exceeds buffer",
                self.pos
            ));
        }
        (0..n).map(|_| self.u64()).collect()
    }

    /// Asserts the buffer was fully consumed.
    pub fn finish(&self) -> Result<(), String> {
        if self.remaining() != 0 {
            return Err(format!(
                "wire data has {} trailing bytes at byte {}",
                self.remaining(),
                self.pos
            ));
        }
        Ok(())
    }
}

/// One-byte code for an optional branch kind (0 = none).
pub fn branch_kind_code(k: Option<BranchKind>) -> u8 {
    match k {
        None => 0,
        Some(BranchKind::Cond) => 1,
        Some(BranchKind::Jump) => 2,
        Some(BranchKind::Call) => 3,
        Some(BranchKind::Return) => 4,
        Some(BranchKind::IndirectJump) => 5,
        Some(BranchKind::IndirectCall) => 6,
    }
}

/// Inverse of [`branch_kind_code`]; rejects unknown codes.
pub fn branch_kind_from_code(code: u8) -> Result<Option<BranchKind>, String> {
    Ok(match code {
        0 => None,
        1 => Some(BranchKind::Cond),
        2 => Some(BranchKind::Jump),
        3 => Some(BranchKind::Call),
        4 => Some(BranchKind::Return),
        5 => Some(BranchKind::IndirectJump),
        6 => Some(BranchKind::IndirectCall),
        v => Err(format!("wire branch kind has invalid code {v}"))?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut w = WireWriter::new();
        w.u64(u64::MAX);
        w.u32(0xdead_beef);
        w.u8(7);
        w.bool(true);
        w.bool(false);
        w.addr(Addr::new(0x1004));
        let buf = w.into_bytes();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.addr().unwrap(), Addr::new(0x1004));
        r.finish().unwrap();
    }

    #[test]
    fn roundtrip_sequences() {
        let mut w = WireWriter::new();
        w.bytes(&[1, 2, 3]);
        w.u64_slice(&[10, 20]);
        let buf = w.into_bytes();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.bytes().unwrap(), &[1, 2, 3]);
        assert_eq!(r.u64_vec().unwrap(), vec![10, 20]);
        r.finish().unwrap();
    }

    #[test]
    fn branch_kinds_roundtrip() {
        let kinds = [
            None,
            Some(BranchKind::Cond),
            Some(BranchKind::Jump),
            Some(BranchKind::Call),
            Some(BranchKind::Return),
            Some(BranchKind::IndirectJump),
            Some(BranchKind::IndirectCall),
        ];
        for k in kinds {
            assert_eq!(branch_kind_from_code(branch_kind_code(k)).unwrap(), k);
        }
        assert!(branch_kind_from_code(9).is_err());
    }

    #[test]
    fn truncation_is_an_error_with_position() {
        let mut w = WireWriter::new();
        w.u64(1);
        let buf = w.into_bytes();
        let mut r = WireReader::new(&buf[..4]);
        let err = r.u64().unwrap_err();
        assert!(err.contains("truncated at byte 0"), "{err}");
    }

    #[test]
    fn bogus_length_rejected_without_allocation() {
        let mut w = WireWriter::new();
        w.u64(u64::MAX); // absurd length prefix
        let buf = w.into_bytes();
        let mut r = WireReader::new(&buf);
        assert!(r.u64_vec().is_err());
        let mut r2 = WireReader::new(&buf);
        assert!(r2.bytes().is_err());
    }

    #[test]
    fn invalid_bool_rejected() {
        let buf = [3u8];
        let mut r = WireReader::new(&buf);
        assert!(r.bool().unwrap_err().contains("invalid value 3"));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = WireWriter::new();
        w.u8(1);
        w.u8(2);
        let buf = w.into_bytes();
        let mut r = WireReader::new(&buf);
        r.u8().unwrap();
        assert!(r.finish().unwrap_err().contains("trailing"));
    }
}
