//! # sfetch-isa
//!
//! The synthetic RISC instruction-set architecture underlying the
//! `stream-fetch` simulator — a Rust reproduction of *"Fetching instruction
//! streams"* (Ramírez, Santana, Larriba-Pey, Valero; MICRO-35, 2002).
//!
//! The paper evaluates fetch *front-ends*, which only observe instruction
//! **addresses**, **branch kinds** and **branch behaviour**; the back-end
//! additionally needs execution **latencies** and a **dependence structure**
//! to turn fetch bandwidth into IPC. This crate defines exactly that surface
//! and nothing more:
//!
//! * [`Addr`] — a byte address in the simulated code/data space,
//! * [`InstClass`] / [`BranchKind`] — the instruction taxonomy,
//! * [`StaticInst`] — one instruction of the static program image, carrying
//!   distance-coded register dependencies and (for memory operations) a
//!   deterministic address-generation pattern,
//! * [`MemPattern`] — the synthetic address stream of a load/store.
//!
//! Instructions are fixed-width ([`INST_BYTES`] = 4 bytes), mirroring the
//! Alpha ISA used in the paper, so cache-line capacities (32/64/128-byte
//! lines hold 8/16/32 instructions) work out exactly as in Table 2.
//!
//! ```
//! use sfetch_isa::{Addr, BranchKind, InstClass, StaticInst};
//!
//! let branch = StaticInst::branch(BranchKind::Cond);
//! assert!(branch.is_cond_branch());
//! assert_eq!(Addr::new(0x1000).next_inst(), Addr::new(0x1004));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod inst;
pub mod wire;

pub use addr::{Addr, INST_BYTES};
pub use inst::{BranchKind, DepDistance, InstClass, MemPattern, StaticInst};
