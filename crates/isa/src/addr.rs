//! Byte addresses in the simulated machine.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Size of one instruction in bytes (fixed-width ISA, like the Alpha used in
/// the paper).
pub const INST_BYTES: u64 = 4;

/// A byte address in the simulated code or data space.
///
/// `Addr` is a transparent newtype over `u64` ([C-NEWTYPE]) so instruction
/// addresses, data addresses and plain counters cannot be confused. Code
/// addresses produced by the layout pass are always instruction-aligned
/// (multiples of [`INST_BYTES`]).
///
/// ```
/// use sfetch_isa::Addr;
///
/// let a = Addr::new(0x1000);
/// assert_eq!(a.next_inst().get(), 0x1004);
/// assert_eq!(a.line_index(64), 0x40);
/// assert!(a.is_inst_aligned());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// The null address; used as a sentinel for "no target yet".
    pub const NULL: Addr = Addr(0);

    /// Creates an address from a raw byte value.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw byte value.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Address of the instruction `n` slots after this one.
    #[inline]
    pub const fn offset_insts(self, n: u64) -> Self {
        Addr(self.0 + n * INST_BYTES)
    }

    /// Address of the next sequential instruction.
    #[inline]
    pub const fn next_inst(self) -> Self {
        self.offset_insts(1)
    }

    /// Whether this address is a multiple of the instruction size.
    #[inline]
    pub const fn is_inst_aligned(self) -> bool {
        self.0.is_multiple_of(INST_BYTES)
    }

    /// Index of the cache line containing this address, for a given line size
    /// in bytes.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `line_bytes` is not a power of two.
    #[inline]
    pub fn line_index(self, line_bytes: u64) -> u64 {
        debug_assert!(line_bytes.is_power_of_two());
        self.0 / line_bytes
    }

    /// First address of the cache line containing this address.
    #[inline]
    pub fn line_base(self, line_bytes: u64) -> Addr {
        Addr(self.line_index(line_bytes) * line_bytes)
    }

    /// Number of *instructions* from this address up to (not including) the
    /// end of its cache line.
    ///
    /// This is the quantity the stream front-end's fetch-request update
    /// mechanism needs each cycle: how much of the current stream fits in the
    /// line being read (paper §3.3–3.4).
    #[inline]
    pub fn insts_to_line_end(self, line_bytes: u64) -> u64 {
        let line_end = self.line_base(line_bytes).0 + line_bytes;
        (line_end - self.0) / INST_BYTES
    }

    /// Distance in whole instructions between two addresses (`self` must not
    /// be below `base`).
    ///
    /// # Panics
    ///
    /// Panics if `self < base` or the distance is not instruction-aligned
    /// (both indicate a simulator bug, not user error).
    #[inline]
    pub fn insts_since(self, base: Addr) -> u64 {
        assert!(self.0 >= base.0, "insts_since: {self} < {base}");
        let delta = self.0 - base.0;
        assert!(delta.is_multiple_of(INST_BYTES), "unaligned distance {delta}");
        delta / INST_BYTES
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

impl From<Addr> for u64 {
    fn from(a: Addr) -> Self {
        a.0
    }
}

impl Add<u64> for Addr {
    type Output = Addr;
    fn add(self, rhs: u64) -> Addr {
        Addr(self.0 + rhs)
    }
}

impl AddAssign<u64> for Addr {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Addr> for Addr {
    type Output = u64;
    fn sub(self, rhs: Addr) -> u64 {
        self.0 - rhs.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_inst_advances_by_inst_bytes() {
        assert_eq!(Addr::new(0).next_inst(), Addr::new(INST_BYTES));
        assert_eq!(Addr::new(100).offset_insts(3), Addr::new(100 + 3 * INST_BYTES));
    }

    #[test]
    fn line_geometry() {
        let a = Addr::new(0x104c);
        assert_eq!(a.line_index(64), 0x1040 / 64);
        assert_eq!(a.line_base(64), Addr::new(0x1040));
        // 0x104c .. 0x1080 = 0x34 bytes = 13 instructions.
        assert_eq!(a.insts_to_line_end(64), 13);
    }

    #[test]
    fn line_start_has_full_line_of_insts() {
        let a = Addr::new(0x2000);
        assert_eq!(a.insts_to_line_end(32), 8);
        assert_eq!(a.insts_to_line_end(64), 16);
        assert_eq!(a.insts_to_line_end(128), 32);
    }

    #[test]
    fn insts_since_counts_instructions() {
        let base = Addr::new(0x1000);
        assert_eq!(base.offset_insts(7).insts_since(base), 7);
        assert_eq!(base.insts_since(base), 0);
    }

    #[test]
    #[should_panic(expected = "insts_since")]
    fn insts_since_rejects_negative_distance() {
        Addr::new(0).insts_since(Addr::new(4));
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(Addr::new(0x12ab).to_string(), "0x12ab");
        assert_eq!(format!("{:x}", Addr::new(0x12ab)), "12ab");
    }

    #[test]
    fn conversions_roundtrip() {
        let a: Addr = 0xdead_beefu64.into();
        let raw: u64 = a.into();
        assert_eq!(raw, 0xdead_beef);
    }
}
