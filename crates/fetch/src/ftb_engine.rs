//! The decoupled FTB front-end (Reinman, Austin, Calder; §2.1) with the
//! perceptron direction predictor of Table 2.
//!
//! The branch-prediction engine runs autonomously: each cycle it looks up
//! the FTB at the prediction pc, predicts the terminating branch with the
//! perceptron, and enqueues a variable-length *fetch block* request in the
//! FTQ; the I-cache stage drains the FTQ. Only branches that have ever
//! been taken terminate fetch blocks — strongly-biased not-taken branches
//! stay embedded. Unlike streams, the FTB does not store overlapping
//! blocks: a newly-taken embedded branch *splits* the resident block.

use std::collections::HashSet;

use sfetch_cfg::CodeImage;
use sfetch_isa::wire::{WireReader, WireWriter};
use sfetch_isa::{Addr, BranchKind};
use sfetch_mem::MemoryHierarchy;
use sfetch_predictors::{Ftb, FtbEntry, GlobalHistory, PerceptronPredictor, Ras};
use sfetch_prefetch::{Lookahead, PrefetchConfig};

use crate::bundle::{
    BranchPrediction, Checkpoint, CommittedInst, FetchedInst, ResolvedBranch,
};
use crate::engine::{FetchEngine, FetchEngineStats};
use crate::front::FrontPipeline;
use crate::ftq::{FetchRequest, Ftq};
use crate::port::IcachePort;

/// Maximum fetch-block length in instructions (bounded length field).
const MAX_BLOCK: u32 = 64;

/// Commit-side fetch-block reconstruction state.
#[derive(Debug, Clone, Copy, Default)]
struct BlockBuilder {
    start: Option<Addr>,
    len: u32,
}

/// The FTB + perceptron front-end.
#[derive(Debug)]
pub struct FtbEngine {
    width: usize,
    ftb: Ftb,
    pred: PerceptronPredictor,
    ras: Ras,
    ghist: GlobalHistory,
    ftq: Ftq,
    pred_pc: Addr,
    port: IcachePort,
    /// Branch pcs ever observed taken — the commit-side terminator set
    /// (idealized as unbounded; the FTB itself is the bounded structure).
    taken_ever: HashSet<Addr>,
    builder: BlockBuilder,
    /// Reusable lookahead scratch for the prefetch drive stage.
    la_buf: Vec<(Addr, u32)>,
    shadow: bool,
    stats: FetchEngineStats,
}

impl FtbEngine {
    /// Builds the engine with the Table 2 configuration: 2048×4 FTB,
    /// 512-perceptron predictor, 8-entry RAS, 4-entry FTQ.
    pub fn table2(width: usize, entry: Addr) -> Self {
        FtbEngine {
            width,
            ftb: Ftb::new(2048, 4),
            pred: PerceptronPredictor::table2(),
            ras: Ras::new(8),
            ghist: GlobalHistory::new(),
            ftq: Ftq::new(4),
            pred_pc: entry,
            port: IcachePort::blocking(),
            taken_ever: HashSet::new(),
            builder: BlockBuilder::default(),
            la_buf: Vec::with_capacity(4),
            shadow: false,
            stats: FetchEngineStats::default(),
        }
    }

    /// Attaches an I-cache prefetch configuration (builder-style).
    pub fn with_prefetch(mut self, pf: &PrefetchConfig) -> Self {
        self.port = IcachePort::from_config(pf);
        self
    }

    /// Applies a front-pipeline model (builder-style). The engine consumes
    /// only the shadow-branch-discovery switch; the timing knobs live in
    /// the processor.
    pub fn with_front(mut self, front: &FrontPipeline) -> Self {
        self.shadow = front.shadow_decode;
        self
    }

    /// Decode-time shadow-branch discovery on a sequential (FTB-miss)
    /// fetch: the whole line region was read from the I-cache, so decode
    /// can see a direct unconditional branch before it executes. Install
    /// the fetch block it terminates, so the *next* lookup at `start`
    /// predicts it instead of misfetching — one encounter earlier than the
    /// commit-side builder learns it. `probe` keeps resident entries' LRU
    /// state untouched; commit-side training corrects the entry if an
    /// earlier embedded conditional turns out taken.
    fn shadow_scan(&mut self, image: &CodeImage, start: Addr, len: u32) {
        if self.ftb.probe(start).is_some() {
            return;
        }
        for i in 0..len {
            let pc = start.offset_insts(u64::from(i));
            let Some(ii) = image.inst_at(pc) else { return };
            let Some(attr) = ii.control else { continue };
            if matches!(attr.kind, BranchKind::Jump | BranchKind::Call) {
                if let Some(target) = attr.target {
                    self.ftb.update(start, FtbEntry { len: i + 1, kind: attr.kind, target });
                    self.stats.shadow_installs += 1;
                }
                return;
            }
        }
    }

    /// Prefetch drive stage over the FTQ occupancy + prediction cursor.
    fn drive_prefetch(&mut self, now: u64, mem: &mut MemoryHierarchy) {
        if !self.port.has_prefetcher() {
            return;
        }
        self.la_buf.clear();
        self.la_buf.extend(self.ftq.iter().map(|r| (r.cur, r.remaining.max(1))));
        let ctx = Lookahead {
            demand: self.ftq.head_addr(),
            queued: &self.la_buf,
            predicted_next: Some(self.pred_pc),
            line_bytes: mem.l1i_line_bytes(),
        };
        self.port.drive(now, mem, &ctx);
    }

    fn prediction_stage(&mut self, mem: &MemoryHierarchy) {
        if !self.ftq.has_space() {
            return;
        }
        let start = self.pred_pc;
        self.stats.predictor_lookups += 1;
        match self.ftb.lookup(start) {
            Some(entry) => {
                self.stats.predictor_hits += 1;
                let len = entry.len.clamp(1, MAX_BLOCK);
                let term_pc = start.offset_insts(u64::from(len) - 1);
                let ras_pre = self.ras.snapshot();
                let ghist_pre = self.ghist.snapshot();
                // `next` is the *predicted* next fetch address: the target
                // when the terminator is predicted taken, the fall-through
                // for a predicted-not-taken conditional. The delivered
                // terminator prediction recovers the direction from
                // `next != fall-through` (conditional targets can never
                // equal their fall-through in a well-formed image).
                let next = match entry.kind {
                    BranchKind::Cond => {
                        let dir = self.pred.predict(term_pc, self.ghist.spec());
                        self.ghist.push_spec(dir);
                        if dir {
                            entry.target
                        } else {
                            term_pc.next_inst()
                        }
                    }
                    BranchKind::Jump | BranchKind::IndirectJump => entry.target,
                    BranchKind::Call | BranchKind::IndirectCall => {
                        self.ras.push(term_pc.next_inst());
                        entry.target
                    }
                    BranchKind::Return => self.ras.pop(),
                };
                let ras_post = self.ras.snapshot();
                self.ftq.push(FetchRequest {
                    start,
                    cur: start,
                    remaining: len,
                    term: Some(entry.kind),
                    next,
                    predicted: true,
                    cp_embedded: Checkpoint { ghist: ghist_pre, path: Default::default(), ras: ras_pre },
                    cp_term: Checkpoint { ghist: ghist_pre, path: Default::default(), ras: ras_post },
                });
                self.pred_pc = next;
            }
            None => {
                // FTB miss: fetch sequentially to the end of the line; the
                // block is built at commit once its terminator is known.
                let line = mem.l1i_line_bytes();
                let len = (start.insts_to_line_end(line) as u32).max(1);
                let next = start.offset_insts(u64::from(len));
                let cp = Checkpoint {
                    ghist: self.ghist.snapshot(),
                    path: Default::default(),
                    ras: self.ras.snapshot(),
                };
                self.ftq.push(FetchRequest {
                    start,
                    cur: start,
                    remaining: len,
                    term: None,
                    next,
                    predicted: false,
                    cp_embedded: cp,
                    cp_term: cp,
                });
                self.pred_pc = next;
            }
        }
    }

}

impl FetchEngine for FtbEngine {
    fn name(&self) -> &'static str {
        "ftb"
    }

    fn width(&self) -> usize {
        self.width
    }

    fn cycle(
        &mut self,
        now: u64,
        image: &CodeImage,
        mem: &mut MemoryHierarchy,
        out: &mut Vec<FetchedInst>,
    ) {
        self.port.begin_cycle(now, mem);
        self.prediction_stage(mem);
        self.drive_prefetch(now, mem);
        if self.port.stalled(now, &mut self.stats) {
            return;
        }
        let Some(head) = self.ftq.head() else { return };
        let req = *head;
        if !self.port.demand(now, mem, req.cur, &mut self.stats) {
            return;
        }
        let line = mem.l1i_line_bytes();
        let k = (self.width as u32)
            .min(req.remaining)
            .min(req.cur.insts_to_line_end(line) as u32)
            .max(1);
        let term_pc = req.term_pc();
        for i in 0..k {
            let pc = req.cur.offset_insts(u64::from(i));
            let Some(ii) = image.inst_at(pc) else {
                self.ftq.clear();
                return;
            };
            let is_term = req.term.is_some() && pc == term_pc;
            let pred = ii.control.map(|attr| {
                if is_term {
                    // Predicted taken iff the request's next address is not
                    // the fall-through.
                    let taken = req.next != term_pc.next_inst();
                    let target = if taken { req.next } else { attr.target.unwrap_or(Addr::NULL) };
                    BranchPrediction { taken, target }
                } else {
                    BranchPrediction { taken: false, target: attr.target.unwrap_or(Addr::NULL) }
                }
            });
            let cp = if is_term { req.cp_term } else { req.cp_embedded };
            out.push(FetchedInst { pc, inst: ii.inst, pred, cp });
        }
        if self.shadow && !req.predicted && req.cur == req.start {
            // First delivery chunk of an unpredicted sequential request:
            // decode sees the whole fetched region — mine it for shadow
            // branches.
            self.shadow_scan(image, req.start, req.remaining);
        }
        let head = self.ftq.head().expect("head exists");
        head.consume(k);
        if head.is_empty() {
            let done = self.ftq.pop().expect("pop");
            self.stats.units += 1;
            self.stats.unit_insts += u64::from(done.len());
        }
    }

    fn redirect(&mut self, now: u64, target: Addr, cp: &Checkpoint, resolved: &ResolvedBranch) {
        self.ftq.clear();
        self.pred_pc = target;
        self.ghist.restore(cp.ghist);
        if resolved.kind == Some(BranchKind::Cond) {
            self.ghist.push_spec(resolved.taken);
        }
        self.ras.restore(cp.ras);
        self.port.redirect(now);
    }

    fn commit(&mut self, ci: &CommittedInst) {
        let start = *self.builder.start.get_or_insert(ci.pc);
        self.builder.len += 1;
        if let Some(c) = ci.control {
            if c.taken {
                self.taken_ever.insert(ci.pc);
            }
            if self.taken_ever.contains(&ci.pc) {
                // This branch terminates fetch blocks from now on: close the
                // block, train the perceptron, upsert/split the FTB entry.
                // History advances only for blocks the FTB actually covers —
                // uncovered terminators never pushed speculative history at
                // fetch, and pushing here would skew the registers apart.
                let len = self.builder.len;
                if c.kind == BranchKind::Cond && self.ftb.probe(start).is_some() {
                    self.pred.update(ci.pc, self.ghist.retired(), c.taken);
                    self.ghist.push_retired(c.taken);
                }
                if len <= MAX_BLOCK {
                    self.ftb.update(
                        start,
                        FtbEntry { len, kind: c.kind, target: c.target },
                    );
                }
                self.builder = BlockBuilder { start: Some(c.next_pc), len: 0 };
                return;
            }
        }
        if ci.mispredicted {
            // Misfetch recovery at a non-terminator: restart block
            // reconstruction at the recovery point.
            self.builder = BlockBuilder { start: Some(ci.next_pc()), len: 0 };
        } else if self.builder.len >= MAX_BLOCK {
            self.builder = BlockBuilder { start: Some(ci.next_pc()), len: 0 };
        }
    }

    fn stall_probe(&self) -> crate::StallCause {
        self.port.last_stall()
    }

    fn warm_state(&self) -> Option<Vec<u8>> {
        let mut w = WireWriter::new();
        w.u32(crate::engine::WARM_FORMAT_VERSION);
        self.ftb.save_wire(&mut w);
        self.pred.save_wire(&mut w);
        self.ghist.save_wire(&mut w);
        // HashSet iteration order is nondeterministic: sort so identical
        // warm states always produce identical bytes.
        let mut taken: Vec<Addr> = self.taken_ever.iter().copied().collect();
        taken.sort_unstable();
        w.u64(taken.len() as u64);
        for pc in taken {
            w.addr(pc);
        }
        let BlockBuilder { start, len } = self.builder;
        w.bool(start.is_some());
        w.addr(start.unwrap_or(Addr::NULL));
        w.u32(len);
        self.ras.save_wire(&mut w);
        self.stats.save_wire(&mut w);
        Some(w.into_bytes())
    }

    fn load_warm_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut r = WireReader::new(bytes);
        let v = r.u32()?;
        if v != crate::engine::WARM_FORMAT_VERSION {
            return Err(format!("warm-state version {v} != {}", crate::engine::WARM_FORMAT_VERSION));
        }
        self.ftb.load_wire(&mut r)?;
        self.pred.load_wire(&mut r)?;
        self.ghist = GlobalHistory::load_wire(&mut r)?;
        let n = r.u64()?;
        self.taken_ever.clear();
        for _ in 0..n {
            self.taken_ever.insert(r.addr()?);
        }
        let has_start = r.bool()?;
        let start = r.addr()?;
        self.builder = BlockBuilder { start: has_start.then_some(start), len: r.u32()? };
        self.ras.load_wire(&mut r)?;
        self.stats = FetchEngineStats::load_wire(&mut r)?;
        r.finish()
    }

    fn stats(&self) -> FetchEngineStats {
        self.stats
    }

    fn storage_bits(&self) -> u64 {
        self.ftb.storage_bits()
            + self.pred.storage_bits()
            + self.ras.storage_bits()
            + self.port.storage_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::CommittedControl;
    use sfetch_cfg::builder::CfgBuilder;
    use sfetch_cfg::{layout, CondBehavior, TripCount};
    use sfetch_mem::MemoryConfig;

    fn loop_image(body: usize) -> (sfetch_cfg::Cfg, CodeImage) {
        let mut bld = CfgBuilder::new();
        let f = bld.add_func("main");
        let b = bld.add_block(f, body);
        let exit = bld.add_block(f, 1);
        bld.set_cond(b, b, exit, CondBehavior::Loop { trip: TripCount::Fixed(1 << 30) });
        bld.set_return(exit);
        let cfg = bld.finish().expect("valid");
        let img = CodeImage::build(&cfg, &layout::natural(&cfg));
        (cfg, img)
    }

    fn commit_loop(eng: &mut FtbEngine, img: &CodeImage, body: u64, times: usize) {
        for _ in 0..times {
            for i in 0..body {
                eng.commit(&CommittedInst {
                    pc: img.entry().offset_insts(i),
                    control: None,
                    mispredicted: false,
                });
            }
            eng.commit(&CommittedInst {
                pc: img.entry().offset_insts(body),
                control: Some(CommittedControl {
                    kind: BranchKind::Cond,
                    taken: true,
                    target: img.entry(),
                    next_pc: img.entry(),
                    is_fixup: false,
                }),
                mispredicted: false,
            });
        }
    }

    #[test]
    fn commit_builds_ftb_blocks() {
        let (_cfg, img) = loop_image(11);
        let mut eng = FtbEngine::table2(8, img.entry());
        commit_loop(&mut eng, &img, 11, 4);
        let e = eng.ftb.lookup(img.entry()).expect("block learned");
        assert_eq!(e.len, 12, "11 body + terminator");
        assert_eq!(e.kind, BranchKind::Cond);
        assert_eq!(e.target, img.entry());
    }

    #[test]
    fn trained_engine_issues_block_requests_and_predicts_taken() {
        let (_cfg, img) = loop_image(11);
        let mut mem = MemoryHierarchy::new(MemoryConfig::table2(8));
        let mut eng = FtbEngine::table2(8, img.entry());
        commit_loop(&mut eng, &img, 11, 40);
        let mut out = Vec::new();
        for t in 0..600 {
            eng.cycle(t, &img, &mut mem, &mut out);
        }
        let term_pc = img.entry().offset_insts(11);
        let term = out.iter().rev().find(|f| f.pc == term_pc).expect("terminator fetched");
        let p = term.pred.expect("pred");
        assert!(p.taken, "perceptron learns the always-taken loop branch");
        assert_eq!(p.target, img.entry());
        assert!(eng.stats().mean_unit_len() > 8.0, "fetch blocks span the loop body");
    }

    #[test]
    fn embedded_never_taken_branch_stays_embedded() {
        // Block with an embedded 100%-NT branch: FTB must keep one long
        // block across it (that's the FTB's advantage over a plain BTB).
        let mut bld = CfgBuilder::new();
        let f = bld.add_func("main");
        let a = bld.add_block(f, 3);
        let b = bld.add_block(f, 3);
        let dead = bld.add_block(f, 1);
        let exit = bld.add_block(f, 1);
        bld.set_cond(a, dead, b, CondBehavior::Bernoulli { p_taken: 0.0 });
        bld.set_cond(b, a, exit, CondBehavior::Loop { trip: TripCount::Fixed(1 << 30) });
        bld.set_return(dead);
        bld.set_return(exit);
        let cfg = bld.finish().expect("valid");
        let img = CodeImage::build(&cfg, &layout::natural(&cfg));
        let mut eng = FtbEngine::table2(8, img.entry());
        // Commit several iterations: a(3) cond-NT b(3) cond-T(back to a).
        for _ in 0..6 {
            for i in 0..3u64 {
                eng.commit(&CommittedInst { pc: img.entry().offset_insts(i), control: None, mispredicted: false });
            }
            eng.commit(&CommittedInst {
                pc: img.entry().offset_insts(3),
                control: Some(CommittedControl {
                    kind: BranchKind::Cond,
                    taken: false,
                    target: img.block_addr(dead),
                    next_pc: img.entry().offset_insts(4),
                    is_fixup: false,
                }),
                mispredicted: false,
            });
            for i in 4..7u64 {
                eng.commit(&CommittedInst { pc: img.entry().offset_insts(i), control: None, mispredicted: false });
            }
            eng.commit(&CommittedInst {
                pc: img.entry().offset_insts(7),
                control: Some(CommittedControl {
                    kind: BranchKind::Cond,
                    taken: true,
                    target: img.entry(),
                    next_pc: img.entry(),
                    is_fixup: false,
                }),
                mispredicted: false,
            });
        }
        let e = eng.ftb.lookup(img.entry()).expect("block");
        assert_eq!(e.len, 8, "embedded NT branch does not terminate the block");
    }

    #[test]
    fn newly_taken_embedded_branch_splits_the_block() {
        let (_cfg, img) = loop_image(11);
        let mut eng = FtbEngine::table2(8, img.entry());
        commit_loop(&mut eng, &img, 11, 3);
        assert_eq!(eng.ftb.lookup(img.entry()).expect("block").len, 12);
        // Now an embedded instruction at +5 turns out to be a taken branch
        // (e.g. first-ever taken): commit a shorter path.
        for i in 0..5u64 {
            eng.commit(&CommittedInst { pc: img.entry().offset_insts(i), control: None, mispredicted: false });
        }
        eng.commit(&CommittedInst {
            pc: img.entry().offset_insts(5),
            control: Some(CommittedControl {
                kind: BranchKind::Cond,
                taken: true,
                target: img.entry(),
                next_pc: img.entry(),
                is_fixup: false,
            }),
            mispredicted: true,
        });
        let e = eng.ftb.lookup(img.entry()).expect("block");
        assert_eq!(e.len, 6, "block split at the newly-taken branch");
    }
}
