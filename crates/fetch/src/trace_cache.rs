//! The trace cache front-end (§2.2, Table 2): next trace predictor,
//! a 32KB 2-way trace cache with **selective trace storage**, and a
//! secondary path (backup BTB + gshare over the instruction cache).
//!
//! Traces are built by the commit-side fill unit: up to 16 instructions,
//! at most 3 conditional branches, ending early at RAS-affecting or
//! indirect control (calls/returns/indirect jumps). Selective trace
//! storage (the paper's ref. \[29\]: red/blue traces) skips traces with no *interior* taken
//! branch — the wide-line instruction cache supplies those equally well,
//! so storing them would only waste trace-cache capacity.
//!
//! On a predicted trace that misses the trace cache, the engine rebuilds
//! the trace path from the instruction cache using the predicted branch
//! directions, one fetch block per cycle — the classic partial-hit
//! behaviour. On a trace-predictor miss it falls back to one
//! BTB/gshare-predicted fetch block per cycle.

use sfetch_cfg::CodeImage;
use sfetch_isa::wire::{WireReader, WireWriter};
use sfetch_isa::{Addr, BranchKind};
use sfetch_mem::MemoryHierarchy;
use sfetch_predictors::{
    AssocTable, Btb, GlobalHistory, Gshare, NextTracePredictor, Ras, TraceId,
    TracePredictorConfig,
};
use sfetch_predictors::trace_pred::TraceUpdate;
use sfetch_prefetch::{Lookahead, PrefetchConfig};

use crate::bundle::{
    BranchPrediction, Checkpoint, CommittedInst, FetchedInst, ResolvedBranch,
};
use crate::engine::{FetchEngine, FetchEngineStats};
use crate::front::FrontPipeline;
use crate::port::IcachePort;

/// Maximum trace length in instructions (16-wide trace lines).
pub const MAX_TRACE: usize = 16;
/// Maximum conditional branches per trace.
pub const MAX_COND: u8 = 3;

/// One trace-cache line: the recorded instruction path.
#[derive(Debug, Clone, PartialEq, Eq)]
struct TraceLine {
    len: u8,
    n_cond: u8,
    dirs: u8,
    pcs: Vec<Addr>,
    term: Option<BranchKind>,
    next: Addr,
}

impl Default for TraceLine {
    fn default() -> Self {
        TraceLine { len: 0, n_cond: 0, dirs: 0, pcs: Vec::new(), term: None, next: Addr::NULL }
    }
}

/// Active multi-cycle delivery state (a trace from the TC, or a predicted
/// trace being rebuilt from the I-cache).
#[derive(Debug, Clone)]
struct Delivering {
    cur_pc: Addr,
    remaining: u8,
    dirs_left: u8,
    term: Option<BranchKind>,
    next: Addr,
    /// `true`: instructions come from the trace cache (no I-cache access);
    /// `false`: rebuilt from the I-cache, one fetch block per cycle.
    from_tc: bool,
    path_cp: sfetch_predictors::PathSnapshot,
    total_len: u8,
}

/// Commit-side fill unit state.
#[derive(Debug, Clone, Default)]
struct FillUnit {
    start: Option<Addr>,
    pcs: Vec<Addr>,
    dirs: u8,
    n_cond: u8,
    mispredicted: bool,
    /// Whether any *interior* instruction was a taken branch.
    interior_taken: bool,
}

/// The trace cache fetch engine.
#[derive(Debug)]
pub struct TraceCacheEngine {
    width: usize,
    pred: NextTracePredictor,
    tc: AssocTable<TraceLine>,
    backup_btb: Btb,
    backup_dir: Gshare,
    ghist: GlobalHistory,
    ras: Ras,
    pc: Addr,
    delivering: Option<Delivering>,
    port: IcachePort,
    fill: FillUnit,
    /// Speculative pseudo-trace accumulation over the backup path, applying
    /// the fill unit's closing rules so the speculative path register stays
    /// aligned with the retired one across trace-predictor misses.
    spec_fill: Option<(Addr, u8, u8)>,
    selective: bool,
    shadow: bool,
    stats: FetchEngineStats,
}

impl TraceCacheEngine {
    /// Builds the engine with the Table 2 configuration: 32KB 2-way trace
    /// cache, cascaded 1K/4K next trace predictor (DOLC 9-4-7-9, 8-entry
    /// RHS), 1K×4 backup BTB, 16K-entry gshare, selective trace storage on.
    pub fn table2(width: usize, entry: Addr) -> Self {
        Self::new(width, entry, true)
    }

    /// Builds the engine with selective trace storage toggled (ablation C).
    pub fn new(width: usize, entry: Addr, selective: bool) -> Self {
        // 32KB / (16 insts * 4B) = 512 lines, 2-way => 256 sets.
        TraceCacheEngine {
            width,
            pred: NextTracePredictor::new(TracePredictorConfig::table2()),
            tc: AssocTable::new(256, 2),
            backup_btb: Btb::new(1024, 4),
            backup_dir: Gshare::new(16 * 1024, 12),
            ghist: GlobalHistory::new(),
            ras: Ras::new(8),
            pc: entry,
            delivering: None,
            port: IcachePort::blocking(),
            fill: FillUnit::default(),
            spec_fill: None,
            selective,
            shadow: false,
            stats: FetchEngineStats::default(),
        }
    }

    /// Attaches an I-cache prefetch configuration (builder-style). The
    /// trace-cache engine's lookahead is the active trace's *next-trace*
    /// address plus the rebuild/backup fetch cursor.
    pub fn with_prefetch(mut self, pf: &PrefetchConfig) -> Self {
        self.port = IcachePort::from_config(pf);
        self
    }

    /// Applies a front-pipeline model (builder-style). The engine consumes
    /// only the shadow-branch-discovery switch; the timing knobs live in
    /// the processor.
    pub fn with_front(mut self, front: &FrontPipeline) -> Self {
        self.shadow = front.shadow_decode;
        self
    }

    /// Decode-time shadow-branch discovery on the backup path: the whole
    /// I-cache line was read, so decode can see direct unconditional
    /// branches past the block's exit point. Pre-install them into the
    /// backup BTB so their first encounter doesn't misfetch. `probe` first
    /// keeps already-resident entries' LRU state untouched. Trace-path
    /// deliveries carry exact recorded paths and need no discovery.
    fn shadow_scan(&mut self, image: &CodeImage, mut pc: Addr, line_base: Addr, line: u64) {
        while pc.line_base(line) == line_base {
            let Some(ii) = image.inst_at(pc) else { break };
            if let Some(attr) = ii.control {
                if matches!(attr.kind, BranchKind::Jump | BranchKind::Call) {
                    if let Some(target) = attr.target {
                        if self.backup_btb.probe(pc).is_none() {
                            self.backup_btb.update(pc, target, attr.kind);
                            self.stats.shadow_installs += 1;
                        }
                    }
                }
            }
            pc = pc.next_inst();
        }
    }

    fn drive_prefetch(&mut self, now: u64, mem: &mut MemoryHierarchy) {
        if !self.port.has_prefetcher() {
            return;
        }
        let (demand, predicted_next) = match &self.delivering {
            Some(d) => ((!d.from_tc).then_some(d.cur_pc), Some(d.next)),
            None => (Some(self.pc), None),
        };
        let ctx = Lookahead {
            demand,
            queued: &[],
            predicted_next,
            line_bytes: mem.l1i_line_bytes(),
        };
        self.port.drive(now, mem, &ctx);
    }

    /// Advances the speculative pseudo-trace over one backup-path
    /// instruction, pushing the path register at fill-rule boundaries.
    fn spec_fill_step(&mut self, pc: Addr, kind: Option<BranchKind>) {
        let (start, mut n, mut n_cond) = match self.spec_fill {
            Some(s) => s,
            None => (pc, 0, 0),
        };
        n += 1;
        if kind == Some(BranchKind::Cond) {
            n_cond += 1;
        }
        let closes = n as usize >= MAX_TRACE
            || n_cond >= MAX_COND && kind == Some(BranchKind::Cond)
            || matches!(
                kind,
                Some(BranchKind::Return)
                    | Some(BranchKind::IndirectCall)
                    | Some(BranchKind::IndirectJump)
            );
        if closes {
            self.pred.notify_fetch(
                TraceId { start, dirs: 0, n_cond },
                kind,
            );
            self.spec_fill = None;
        } else {
            self.spec_fill = Some((start, n, n_cond));
        }
    }

    #[inline]
    fn tc_key(id: &TraceId) -> (u64, u64) {
        let word = id.start.get() >> 2;
        let index = word;
        let tag = (word << 11) | (u64::from(id.n_cond) << 8) | u64::from(id.dirs);
        (index, tag)
    }

    /// Delivers from the active trace (TC or rebuild mode). Returns whether
    /// delivery should stop this cycle.
    fn deliver_trace(
        &mut self,
        now: u64,
        image: &CodeImage,
        mem: &mut MemoryHierarchy,
        out: &mut Vec<FetchedInst>,
    ) {
        let mut d = self.delivering.take().expect("delivering");
        let line_bytes = mem.l1i_line_bytes();
        if !d.from_tc {
            // Rebuild mode pays an I-cache access for the current block.
            if !self.port.demand(now, mem, d.cur_pc, &mut self.stats) {
                self.delivering = Some(d);
                return;
            }
        }
        let block_line = d.cur_pc.line_base(line_bytes);
        let mut delivered = 0;
        while delivered < self.width && d.remaining > 0 {
            if !d.from_tc && d.cur_pc.line_base(line_bytes) != block_line {
                // One line per cycle on the rebuild path.
                break;
            }
            let pc = d.cur_pc;
            let Some(ii) = image.inst_at(pc) else {
                // Wrong path off the image.
                self.delivering = None;
                return;
            };
            let is_term_slot = d.remaining == 1;
            let mut next_pc = pc.next_inst();
            let mut ends_block = false;
            // Checkpoint state *before* this instruction's own speculative
            // updates, so redirect + push-actual reconstructs history.
            let ghist_pre = self.ghist.snapshot();
            let pred = match ii.control {
                None => None,
                Some(attr) => {
                    let (taken, target) = if is_term_slot {
                        match d.term {
                            Some(BranchKind::Cond) => {
                                let dir = d.dirs_left & 1 == 1;
                                d.dirs_left >>= 1;
                                self.ghist.push_spec(dir);
                                (dir, if dir { d.next } else { attr.target.unwrap_or(Addr::NULL) })
                            }
                            // Terminator RAS operations happen here, at
                            // delivery, where the branch's true pc is known
                            // — traces are non-sequential, so the return
                            // address is `pc + 4`, NOT `start + len`.
                            Some(BranchKind::Call) | Some(BranchKind::IndirectCall) => {
                                self.ras.push(pc.next_inst());
                                (true, d.next)
                            }
                            Some(BranchKind::Return) => {
                                let t = self.ras.pop();
                                d.next = t;
                                (true, t)
                            }
                            Some(_) => (true, d.next),
                            None => {
                                // Trace split at the cap: embedded semantics.
                                if attr.kind == BranchKind::Cond {
                                    self.ghist.push_spec(false);
                                }
                                (false, attr.target.unwrap_or(Addr::NULL))
                            }
                        }
                    } else {
                        match attr.kind {
                            BranchKind::Cond => {
                                let dir = d.dirs_left & 1 == 1;
                                d.dirs_left >>= 1;
                                self.ghist.push_spec(dir);
                                (dir, attr.target.unwrap_or(Addr::NULL))
                            }
                            // Interior calls/returns can only appear when a
                            // predicted trace shape is stale (the fill unit
                            // ends traces at them). They still transfer
                            // control correctly, so no divergence flags
                            // them — the RAS must be maintained here or it
                            // silently skews and every later return pays.
                            BranchKind::Call | BranchKind::IndirectCall => {
                                self.ras.push(pc.next_inst());
                                (true, attr.target.unwrap_or(Addr::NULL))
                            }
                            BranchKind::Return => (true, self.ras.pop()),
                            _ => (true, attr.target.unwrap_or(Addr::NULL)),
                        }
                    };
                    if taken {
                        next_pc = target;
                        ends_block = true;
                    }
                    Some(BranchPrediction { taken, target })
                }
            };
            // RAS snapshot after this instruction's own op (terminator
            // push/pop included), before any younger speculation.
            let cp = Checkpoint { ghist: ghist_pre, path: d.path_cp, ras: self.ras.snapshot() };
            out.push(FetchedInst { pc, inst: ii.inst, pred, cp });
            d.cur_pc = next_pc;
            d.remaining -= 1;
            delivered += 1;
            if !d.from_tc && ends_block {
                // Block boundary: the rebuild path needs another cycle.
                break;
            }
        }
        if d.remaining == 0 {
            self.pc = d.next;
            self.stats.units += 1;
            self.stats.unit_insts += u64::from(d.total_len);
            self.delivering = None;
        } else {
            self.delivering = Some(d);
        }
    }

    /// Secondary path: one BTB/gshare-predicted fetch block from the
    /// I-cache (on trace-predictor misses).
    fn fetch_backup_block(
        &mut self,
        now: u64,
        image: &CodeImage,
        mem: &mut MemoryHierarchy,
        out: &mut Vec<FetchedInst>,
    ) {
        if !self.port.demand(now, mem, self.pc, &mut self.stats) {
            return;
        }
        let line = mem.l1i_line_bytes();
        let start = self.pc;
        let mut delivered = 0u64;
        let mut scan_from = start;
        while delivered < self.width as u64 {
            let pc = self.pc;
            if delivered > 0 && pc.line_base(line) != start.line_base(line) {
                break;
            }
            let Some(ii) = image.inst_at(pc) else { break };
            scan_from = pc.next_inst();
            let Some(attr) = ii.control else {
                out.push(FetchedInst { pc, inst: ii.inst, pred: None, cp: self.current_cp() });
                self.spec_fill_step(pc, None);
                self.pc = pc.next_inst();
                delivered += 1;
                continue;
            };
            self.spec_fill_step(pc, Some(attr.kind));
            let mut cp = self.current_cp();
            let Some(entry) = self.backup_btb.lookup(pc) else {
                out.push(FetchedInst {
                    pc,
                    inst: ii.inst,
                    pred: Some(BranchPrediction {
                        taken: false,
                        target: attr.target.unwrap_or(Addr::NULL),
                    }),
                    cp,
                });
                self.pc = pc.next_inst();
                delivered += 1;
                continue;
            };
            let (taken, target) = match attr.kind {
                BranchKind::Cond => {
                    let dir = self.backup_dir.predict(pc, self.ghist.spec());
                    self.ghist.push_spec(dir);
                    (dir, entry.target)
                }
                BranchKind::Call | BranchKind::IndirectCall => {
                    self.ras.push(pc.next_inst());
                    cp.ras = self.ras.snapshot();
                    let t = if attr.kind == BranchKind::Call {
                        attr.target.expect("direct call target")
                    } else {
                        entry.target
                    };
                    (true, t)
                }
                BranchKind::Return => {
                    let t = self.ras.pop();
                    cp.ras = self.ras.snapshot();
                    (true, t)
                }
                _ => (true, entry.target),
            };
            out.push(FetchedInst {
                pc,
                inst: ii.inst,
                pred: Some(BranchPrediction { taken, target }),
                cp,
            });
            delivered += 1;
            if taken {
                self.pc = target;
                break;
            }
            self.pc = pc.next_inst();
        }
        if delivered > 0 {
            self.stats.units += 1;
            self.stats.unit_insts += delivered;
            if self.shadow {
                self.shadow_scan(image, scan_from, start.line_base(line), line);
            }
        }
    }

    fn current_cp(&self) -> Checkpoint {
        Checkpoint {
            ghist: self.ghist.snapshot(),
            path: self.pred.snapshot(),
            ras: self.ras.snapshot(),
        }
    }

    /// Closes the fill-unit trace and trains the predictor / trace cache.
    fn close_fill(&mut self, next: Addr, term: Option<BranchKind>) {
        let f = std::mem::take(&mut self.fill);
        let Some(start) = f.start else { return };
        let len = f.pcs.len();
        if len == 0 {
            return;
        }
        let id = TraceId { start, dirs: f.dirs, n_cond: f.n_cond };
        self.pred.commit_trace(TraceUpdate {
            id,
            len: len as u8,
            term,
            next,
            mispredicted: f.mispredicted,
        });
        // Selective trace storage: only non-sequential ("red") traces enter
        // the trace cache.
        if !self.selective || f.interior_taken {
            let (index, tag) = Self::tc_key(&id);
            self.tc.insert_lru(
                index,
                tag,
                TraceLine {
                    len: len as u8,
                    n_cond: f.n_cond,
                    dirs: f.dirs,
                    pcs: f.pcs,
                    term,
                    next,
                },
            );
        }
        self.fill.start = Some(next);
    }
}

impl FetchEngine for TraceCacheEngine {
    fn name(&self) -> &'static str {
        "tcache"
    }

    fn width(&self) -> usize {
        self.width
    }

    fn cycle(
        &mut self,
        now: u64,
        image: &CodeImage,
        mem: &mut MemoryHierarchy,
        out: &mut Vec<FetchedInst>,
    ) {
        self.port.begin_cycle(now, mem);
        self.drive_prefetch(now, mem);
        if self.port.stalled(now, &mut self.stats) {
            return;
        }
        if self.delivering.is_some() {
            self.deliver_trace(now, image, mem, out);
            return;
        }
        let start = self.pc;
        self.stats.predictor_lookups += 1;
        match self.pred.predict(start) {
            Some(p) => {
                self.stats.predictor_hits += 1;
                // A predicted trace is a complete unit: drop any partial
                // backup-path pseudo-trace accumulation.
                self.spec_fill = None;
                // Checkpoint *after* the trace's path push: the commit-side
                // fill unit closes a (partial) trace with this start at a
                // recovery, so the restored register must include the push.
                self.pred.notify_fetch(p.id, p.term);
                let path_cp = self.pred.snapshot();
                let (index, tag) = Self::tc_key(&p.id);
                let hit = self.tc.lookup(index, tag).cloned();
                // Shape to deliver: the resident trace line on a hit, the
                // predictor's data on a miss (rebuilt from the I-cache).
                let (from_tc, eff_len, eff_dirs, eff_term) = match &hit {
                    Some(line) => {
                        self.stats.tc_hits += 1;
                        (true, line.len, line.dirs, line.term)
                    }
                    None => {
                        self.stats.tc_misses += 1;
                        (false, p.len, p.id.dirs, p.term)
                    }
                };
                // Terminator RAS operations are applied at delivery (where
                // the terminator's true pc is known); for return-terminated
                // traces `next` is patched with the popped address there.
                self.delivering = Some(Delivering {
                    cur_pc: start,
                    remaining: eff_len,
                    dirs_left: eff_dirs,
                    term: eff_term,
                    next: p.next,
                    from_tc,
                    path_cp,
                    total_len: eff_len,
                });
                self.deliver_trace(now, image, mem, out);
            }
            None => {
                self.fetch_backup_block(now, image, mem, out);
            }
        }
    }

    fn redirect(&mut self, now: u64, target: Addr, cp: &Checkpoint, resolved: &ResolvedBranch) {
        self.delivering = None;
        self.spec_fill = None;
        self.pc = target;
        self.pred.restore(cp.path);
        self.ghist.restore(cp.ghist);
        if resolved.kind == Some(BranchKind::Cond) {
            self.ghist.push_spec(resolved.taken);
        }
        self.ras.restore(cp.ras);
        self.port.redirect(now);
    }

    fn commit(&mut self, ci: &CommittedInst) {
        // Backup predictor training.
        if let Some(c) = ci.control {
            if c.kind == BranchKind::Cond {
                self.backup_dir.update(ci.pc, self.ghist.retired(), c.taken);
                self.ghist.push_retired(c.taken);
            }
            if c.taken {
                self.backup_btb.update(ci.pc, c.target, c.kind);
            }
        }
        // Fill unit.
        self.fill.start.get_or_insert(ci.pc);
        if self.fill.pcs.len() >= MAX_TRACE {
            // Shouldn't happen (closed eagerly below), but guard.
            let next = ci.pc;
            self.close_fill(next, None);
            self.fill.start = Some(ci.pc);
        }
        self.fill.pcs.push(ci.pc);
        self.fill.mispredicted |= ci.mispredicted;
        let mut close_kind: Option<Option<BranchKind>> = None;
        let mut next = ci.next_pc();
        if let Some(c) = ci.control {
            if c.kind == BranchKind::Cond {
                self.fill.dirs |= u8::from(c.taken) << self.fill.n_cond;
                self.fill.n_cond += 1;
            }
            match c.kind {
                // Trace packing keeps direct calls *inside* traces
                // (their targets are static, and delivery maintains the
                // RAS at the call's true pc); only data-dependent
                // control — returns and indirects — ends a trace.
                BranchKind::Return | BranchKind::IndirectCall | BranchKind::IndirectJump => {
                    close_kind = Some(Some(c.kind));
                }
                BranchKind::Cond if self.fill.n_cond >= MAX_COND => {
                    close_kind = Some(Some(c.kind));
                }
                _ => {}
            }
            if c.taken && close_kind.is_none() && self.fill.pcs.len() < MAX_TRACE {
                self.fill.interior_taken = true;
            }
            next = c.next_pc;
        }
        if close_kind.is_none() {
            if self.fill.pcs.len() >= MAX_TRACE {
                close_kind = Some(ci.control.map(|c| c.kind));
            } else if ci.mispredicted {
                // Close at recoveries so predictor training follows the
                // fetch-time trace boundaries.
                close_kind = Some(ci.control.map(|c| c.kind));
            }
        }
        if let Some(term) = close_kind {
            self.close_fill(next, term);
        }
    }

    fn stall_probe(&self) -> crate::StallCause {
        self.port.last_stall()
    }

    fn warm_state(&self) -> Option<Vec<u8>> {
        let mut w = WireWriter::new();
        w.u32(crate::engine::WARM_FORMAT_VERSION);
        self.pred.save_wire(&mut w);
        self.tc.save_wire_with(&mut w, &mut |w, line| {
            let TraceLine { len, n_cond, dirs, pcs, term, next } = line;
            w.u8(*len);
            w.u8(*n_cond);
            w.u8(*dirs);
            w.u64(pcs.len() as u64);
            for pc in pcs {
                w.addr(*pc);
            }
            w.branch_kind(*term);
            w.addr(*next);
        });
        self.backup_btb.save_wire(&mut w);
        self.backup_dir.save_wire(&mut w);
        self.ghist.save_wire(&mut w);
        self.ras.save_wire(&mut w);
        let FillUnit { start, pcs, dirs, n_cond, mispredicted, interior_taken } = &self.fill;
        w.bool(start.is_some());
        w.addr(start.unwrap_or(Addr::NULL));
        w.u64(pcs.len() as u64);
        for pc in pcs {
            w.addr(*pc);
        }
        w.u8(*dirs);
        w.u8(*n_cond);
        w.bool(*mispredicted);
        w.bool(*interior_taken);
        self.stats.save_wire(&mut w);
        Some(w.into_bytes())
    }

    fn load_warm_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut r = WireReader::new(bytes);
        let v = r.u32()?;
        if v != crate::engine::WARM_FORMAT_VERSION {
            return Err(format!("warm-state version {v} != {}", crate::engine::WARM_FORMAT_VERSION));
        }
        self.pred.load_wire(&mut r)?;
        self.tc.load_wire_with(&mut r, &mut |r| {
            let len = r.u8()?;
            let n_cond = r.u8()?;
            let dirs = r.u8()?;
            let n = r.u64()? as usize;
            if n > MAX_TRACE {
                return Err(format!("trace line of {n} pcs exceeds MAX_TRACE"));
            }
            let mut pcs = Vec::with_capacity(n);
            for _ in 0..n {
                pcs.push(r.addr()?);
            }
            Ok(TraceLine { len, n_cond, dirs, pcs, term: r.branch_kind()?, next: r.addr()? })
        })?;
        self.backup_btb.load_wire(&mut r)?;
        self.backup_dir.load_wire(&mut r)?;
        self.ghist = GlobalHistory::load_wire(&mut r)?;
        self.ras.load_wire(&mut r)?;
        let has_start = r.bool()?;
        let start = r.addr()?;
        let n = r.u64()? as usize;
        if n > MAX_TRACE {
            return Err(format!("fill unit of {n} pcs exceeds MAX_TRACE"));
        }
        let mut pcs = Vec::with_capacity(n);
        for _ in 0..n {
            pcs.push(r.addr()?);
        }
        self.fill = FillUnit {
            start: has_start.then_some(start),
            pcs,
            dirs: r.u8()?,
            n_cond: r.u8()?,
            mispredicted: r.bool()?,
            interior_taken: r.bool()?,
        };
        self.stats = FetchEngineStats::load_wire(&mut r)?;
        r.finish()
    }

    fn stats(&self) -> FetchEngineStats {
        self.stats
    }

    fn storage_bits(&self) -> u64 {
        // Trace cache: 512 lines x 16 insts x 32 bits data + tag/state,
        // plus predictor structures — the paper's "high cost" column.
        let tc_bits = 512 * (16 * 32 + 30 + 11 + 2);
        tc_bits
            + self.pred.storage_bits()
            + self.backup_btb.storage_bits()
            + self.backup_dir.storage_bits()
            + self.ras.storage_bits()
            + self.port.storage_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::CommittedControl;
    use sfetch_cfg::builder::CfgBuilder;
    use sfetch_cfg::{layout, CondBehavior, TripCount};
    use sfetch_mem::MemoryConfig;

    /// Two-block loop with an interior taken branch: a -> (jump) b -> (cond
    /// back to a). Traces over it are non-sequential, so they are stored.
    fn two_block_loop() -> (sfetch_cfg::Cfg, CodeImage) {
        let mut bld = CfgBuilder::new();
        let f = bld.add_func("main");
        let a = bld.add_block(f, 3);
        let pad = bld.add_block(f, 5); // separates a and b physically
        let b = bld.add_block(f, 3);
        let exit = bld.add_block(f, 1);
        bld.set_jump(a, b);
        bld.set_return(pad);
        bld.set_cond(b, a, exit, CondBehavior::Loop { trip: TripCount::Fixed(1 << 30) });
        bld.set_return(exit);
        let cfg = bld.finish().expect("valid");
        let img = CodeImage::build(&cfg, &layout::natural(&cfg));
        (cfg, img)
    }

    /// Commits one full loop iteration: a(3) jump b(3) cond->a.
    fn commit_iteration(eng: &mut TraceCacheEngine, img: &CodeImage, a: Addr, b: Addr) {
        for i in 0..3u64 {
            eng.commit(&CommittedInst { pc: a.offset_insts(i), control: None, mispredicted: false });
        }
        eng.commit(&CommittedInst {
            pc: a.offset_insts(3),
            control: Some(CommittedControl {
                kind: BranchKind::Jump,
                taken: true,
                target: b,
                next_pc: b,
                is_fixup: false,
            }),
            mispredicted: false,
        });
        for i in 0..3u64 {
            eng.commit(&CommittedInst { pc: b.offset_insts(i), control: None, mispredicted: false });
        }
        eng.commit(&CommittedInst {
            pc: b.offset_insts(3),
            control: Some(CommittedControl {
                kind: BranchKind::Cond,
                taken: true,
                target: a,
                next_pc: a,
                is_fixup: false,
            }),
            mispredicted: false,
        });
        let _ = img;
    }

    #[test]
    fn fill_unit_builds_and_stores_nonsequential_traces() {
        let (cfg, img) = two_block_loop();
        let a = img.block_addr(cfg.blocks()[0].id());
        let b = img.block_addr(cfg.blocks()[2].id());
        let mut eng = TraceCacheEngine::table2(8, img.entry());
        for _ in 0..8 {
            commit_iteration(&mut eng, &img, a, b);
        }
        assert!(eng.tc.occupancy() > 0, "non-sequential traces must be stored");
    }

    #[test]
    fn trained_engine_hits_trace_cache_and_delivers_across_blocks() {
        let (cfg, img) = two_block_loop();
        let a = img.block_addr(cfg.blocks()[0].id());
        let b = img.block_addr(cfg.blocks()[2].id());
        let mut mem = MemoryHierarchy::new(MemoryConfig::table2(8));
        let mut eng = TraceCacheEngine::table2(8, img.entry());
        for _ in 0..12 {
            commit_iteration(&mut eng, &img, a, b);
        }
        let mut out = Vec::new();
        for t in 0..300 {
            eng.cycle(t, &img, &mut mem, &mut out);
        }
        assert!(eng.stats().tc_hits > 0, "trace cache must hit after training");
        // A delivered trace spans the taken jump: instructions from both
        // blocks appear in order within a single unit.
        let a_pos = out.iter().position(|f| f.pc == a);
        let b_pos = out.iter().position(|f| f.pc == b);
        assert!(a_pos.is_some() && b_pos.is_some());
        // The jump inside the trace is predicted taken to b.
        let jmp = out.iter().find(|f| f.pc == a.offset_insts(3)).expect("jump fetched");
        let p = jmp.pred.expect("pred");
        assert!(p.taken);
        assert_eq!(p.target, b);
    }

    #[test]
    fn selective_storage_skips_sequential_traces() {
        // A purely sequential loop whose iteration is exactly one 16-inst
        // trace (15 body + latch): every trace is "blue" — with selective
        // storage the TC stays empty; without it, traces are stored.
        let mut bld = CfgBuilder::new();
        let f = bld.add_func("main");
        let body = bld.add_block(f, 15);
        let exit = bld.add_block(f, 1);
        bld.set_cond(body, body, exit, CondBehavior::Loop { trip: TripCount::Fixed(1 << 30) });
        bld.set_return(exit);
        let cfg = bld.finish().expect("valid");
        let img = CodeImage::build(&cfg, &layout::natural(&cfg));
        let commit_iter = |eng: &mut TraceCacheEngine| {
            for i in 0..15u64 {
                eng.commit(&CommittedInst {
                    pc: img.entry().offset_insts(i),
                    control: None,
                    mispredicted: false,
                });
            }
            eng.commit(&CommittedInst {
                pc: img.entry().offset_insts(15),
                control: Some(CommittedControl {
                    kind: BranchKind::Cond,
                    taken: true,
                    target: img.entry(),
                    next_pc: img.entry(),
                    is_fixup: false,
                }),
                mispredicted: false,
            });
        };
        let mut selective = TraceCacheEngine::new(8, img.entry(), true);
        let mut greedy = TraceCacheEngine::new(8, img.entry(), false);
        for _ in 0..8 {
            commit_iter(&mut selective);
            commit_iter(&mut greedy);
        }
        assert_eq!(selective.tc.occupancy(), 0, "blue traces are not stored");
        assert!(greedy.tc.occupancy() > 0, "without STS everything is stored");
    }

    #[test]
    fn fill_unit_respects_cond_limit() {
        let (_cfg, img) = two_block_loop();
        let mut eng = TraceCacheEngine::table2(8, img.entry());
        // Commit 5 consecutive taken conditionals at distinct pcs: traces
        // must close at 3 conditionals.
        for i in 0..5u64 {
            eng.commit(&CommittedInst {
                pc: img.entry().offset_insts(i * 2),
                control: None,
                mispredicted: false,
            });
            eng.commit(&CommittedInst {
                pc: img.entry().offset_insts(i * 2 + 1),
                control: Some(CommittedControl {
                    kind: BranchKind::Cond,
                    taken: true,
                    target: img.entry().offset_insts(i * 2 + 2),
                    next_pc: img.entry().offset_insts(i * 2 + 2),
                    is_fixup: false,
                }),
                mispredicted: false,
            });
        }
        // First trace: 6 insts (3 conds) — check the predictor learned it.
        // Keep committing the same pattern to train.
        for _ in 0..4 {
            for i in 0..5u64 {
                eng.commit(&CommittedInst {
                    pc: img.entry().offset_insts(i * 2),
                    control: None,
                    mispredicted: false,
                });
                eng.commit(&CommittedInst {
                    pc: img.entry().offset_insts(i * 2 + 1),
                    control: Some(CommittedControl {
                        kind: BranchKind::Cond,
                        taken: true,
                        target: img.entry().offset_insts(i * 2 + 2),
                        next_pc: img.entry().offset_insts(i * 2 + 2),
                        is_fixup: false,
                    }),
                    mispredicted: false,
                });
            }
        }
        let p = eng.pred.predict(img.entry());
        if let Some(p) = p {
            assert!(p.id.n_cond <= MAX_COND);
            assert!(p.len <= MAX_TRACE as u8);
        }
    }

    #[test]
    fn returns_end_traces() {
        let (_cfg, img) = two_block_loop();
        let mut eng = TraceCacheEngine::table2(8, img.entry());
        eng.commit(&CommittedInst { pc: img.entry(), control: None, mispredicted: false });
        eng.commit(&CommittedInst {
            pc: img.entry().offset_insts(1),
            control: Some(CommittedControl {
                kind: BranchKind::Return,
                taken: true,
                target: img.entry().offset_insts(40),
                next_pc: img.entry().offset_insts(40),
                is_fixup: false,
            }),
            mispredicted: false,
        });
        // The trace closed: training visible at the start address.
        for _ in 0..3 {
            eng.commit(&CommittedInst { pc: img.entry(), control: None, mispredicted: false });
            eng.commit(&CommittedInst {
                pc: img.entry().offset_insts(1),
                control: Some(CommittedControl {
                    kind: BranchKind::Return,
                    taken: true,
                    target: img.entry().offset_insts(40),
                    next_pc: img.entry().offset_insts(40),
                    is_fixup: false,
                }),
                mispredicted: false,
            });
            // follow-on instruction after the return target
            eng.commit(&CommittedInst {
                pc: img.entry().offset_insts(40),
                control: Some(CommittedControl {
                    kind: BranchKind::Jump,
                    taken: true,
                    target: img.entry(),
                    next_pc: img.entry(),
                    is_fixup: false,
                }),
                mispredicted: false,
            });
        }
        let p = eng.pred.predict(img.entry()).expect("trained");
        assert_eq!(p.term, Some(BranchKind::Return));
        assert_eq!(p.len, 2);
    }
}
