//! The fetch-engine interface shared by the four front-ends.

use sfetch_cfg::CodeImage;
use sfetch_isa::wire::{WireReader, WireWriter};
use sfetch_isa::Addr;
use sfetch_mem::MemoryHierarchy;

use crate::bundle::{Checkpoint, CommittedInst, FetchedInst, ResolvedBranch};

/// Version tag embedded in every engine warm-state payload. Bump whenever
/// any engine's warm-state wire layout changes; stale banked entries are
/// then rejected at load and recomputed.
pub const WARM_FORMAT_VERSION: u32 = 1;

/// Aggregate fetch-engine statistics (engine-agnostic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FetchEngineStats {
    /// Prediction-structure lookups (stream/trace/FTB/BTB-group lookups).
    pub predictor_lookups: u64,
    /// Lookups that hit.
    pub predictor_hits: u64,
    /// Completed fetch units (streams / fetch blocks / traces / EV8 groups).
    pub units: u64,
    /// Total instructions across completed fetch units — `unit_insts /
    /// units` is Table 1's "size (inst.)" column.
    pub unit_insts: u64,
    /// Trace-cache hits (trace cache engine only).
    pub tc_hits: u64,
    /// Trace-cache misses (trace cache engine only).
    pub tc_misses: u64,
    /// Cycles spent stalled on I-cache misses.
    pub icache_stall_cycles: u64,
    /// Demand-miss stall cycles served by the L2 (subset of
    /// `icache_stall_cycles`).
    pub stall_l2_cycles: u64,
    /// Demand-miss stall cycles served by memory (subset of
    /// `icache_stall_cycles`).
    pub stall_mem_cycles: u64,
    /// Cycles a demand miss could not start its fill for want of a free
    /// MSHR (non-blocking miss pipeline only).
    pub stall_mshr_cycles: u64,
    /// Branch-structure entries pre-installed by decode-time shadow-branch
    /// discovery ([`crate::front::FrontPipeline::shadow_decode`]): direct
    /// unconditional branches found in the fetched-but-unconsumed
    /// remainder of a line/fetch group. Zero when shadow decode is off.
    pub shadow_installs: u64,
}

impl FetchEngineStats {
    /// Mean fetch-unit size in instructions.
    pub fn mean_unit_len(&self) -> f64 {
        if self.units == 0 {
            0.0
        } else {
            self.unit_insts as f64 / self.units as f64
        }
    }

    /// Serializes the counters (exhaustive: adding a field breaks this).
    pub fn save_wire(&self, w: &mut WireWriter) {
        let Self {
            predictor_lookups,
            predictor_hits,
            units,
            unit_insts,
            tc_hits,
            tc_misses,
            icache_stall_cycles,
            stall_l2_cycles,
            stall_mem_cycles,
            stall_mshr_cycles,
            shadow_installs,
        } = self;
        for v in [
            predictor_lookups,
            predictor_hits,
            units,
            unit_insts,
            tc_hits,
            tc_misses,
            icache_stall_cycles,
            stall_l2_cycles,
            stall_mem_cycles,
            stall_mshr_cycles,
            shadow_installs,
        ] {
            w.u64(*v);
        }
    }

    /// Deserializes counters written by [`FetchEngineStats::save_wire`].
    pub fn load_wire(r: &mut WireReader<'_>) -> Result<Self, String> {
        Ok(Self {
            predictor_lookups: r.u64()?,
            predictor_hits: r.u64()?,
            units: r.u64()?,
            unit_insts: r.u64()?,
            tc_hits: r.u64()?,
            tc_misses: r.u64()?,
            icache_stall_cycles: r.u64()?,
            stall_l2_cycles: r.u64()?,
            stall_mem_cycles: r.u64()?,
            stall_mshr_cycles: r.u64()?,
            shadow_installs: r.u64()?,
        })
    }
}

/// A cycle-accurate instruction fetch front-end.
///
/// The processor drives the engine with one [`FetchEngine::cycle`] call per
/// clock; the engine delivers up to its width of [`FetchedInst`]s, fetching
/// *its own predicted path* through the [`CodeImage`] — including wrong
/// paths. The processor verifies the delivered instructions against the
/// architectural executor and calls [`FetchEngine::redirect`] on recovery
/// and [`FetchEngine::commit`] for every retired instruction.
pub trait FetchEngine {
    /// Engine name for reports ("streams", "ev8", "ftb", "tcache").
    fn name(&self) -> &'static str;

    /// Pipeline width (max instructions delivered per cycle).
    fn width(&self) -> usize;

    /// Runs one fetch cycle at time `now`, appending delivered instructions
    /// to `out` (at most `width()`); may deliver none while stalled on an
    /// I-cache miss or after running off the image on a wrong path.
    fn cycle(
        &mut self,
        now: u64,
        image: &CodeImage,
        mem: &mut MemoryHierarchy,
        out: &mut Vec<FetchedInst>,
    );

    /// Redirects fetch to `target`, restoring speculative state from `cp`
    /// and folding in the resolved outcome. Called for execute-time
    /// misprediction recoveries and decode-time misfetches alike.
    fn redirect(&mut self, now: u64, target: Addr, cp: &Checkpoint, resolved: &ResolvedBranch);

    /// Reports one committed (retired) instruction for table training and
    /// retired-history maintenance. Called in program order.
    fn commit(&mut self, ci: &CommittedInst);

    /// Reports one commit group (all instructions retired in one cycle) in
    /// program order. The processor's commit stage calls this once per
    /// cycle instead of [`FetchEngine::commit`] once per instruction:
    /// default trait methods are instantiated per engine type, so the
    /// inner `commit` calls dispatch statically — one virtual call per
    /// group instead of one per instruction on the commit hot path.
    fn commit_block(&mut self, cis: &[CommittedInst]) {
        for ci in cis {
            self.commit(ci);
        }
    }

    /// Functional-warming path: trains the engine's commit-side structures
    /// from a block of architecturally committed instructions **without**
    /// a timing model driving it. Sampled simulation's fast-forward mode
    /// calls this so predictor tables and histories reach each detailed
    /// window warm. The default routes through [`FetchEngine::commit_block`]
    /// — commit-side training is already timing-free — with the caveat
    /// that warming records carry `mispredicted: false` (no front-end ran,
    /// so no redirects were observed).
    fn warm_block(&mut self, cis: &[CommittedInst]) {
        self.commit_block(cis);
    }

    /// Serializes the engine's *commit-side* warm state — predictor
    /// tables, histories, fill/builder units and statistics, exactly the
    /// structures [`FetchEngine::warm_block`] mutates. Fetch-side cursors
    /// (FTQ, I-cache port, in-flight deliveries) are excluded: they are
    /// factory-fresh after warming and rebuilt by the post-warm resync
    /// redirect. Returns `None` for engines without banking support.
    fn warm_state(&self) -> Option<Vec<u8>> {
        None
    }

    /// Restores warm state captured by [`FetchEngine::warm_state`] into a
    /// freshly built engine of the *same* configuration. Any mismatch
    /// (geometry, version, trailing bytes) is an error — callers treat a
    /// failed load as a cache miss and rewarm from scratch.
    fn load_warm_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        let _ = bytes;
        Err("engine does not support warm-state banking".to_string())
    }

    /// Host-side decoded-line-cache counters `(hits, misses)`; `(0, 0)`
    /// for engines without one or with the cache disabled. Deliberately
    /// separate from [`FetchEngine::stats`]: the cache is a host
    /// optimization and simulated statistics are bit-identical with it
    /// on or off.
    fn decode_counters(&self) -> (u64, u64) {
        (0, 0)
    }

    /// Why the engine delivered nothing during the *current* cycle (the
    /// most recent [`FetchEngine::cycle`] call):
    /// [`crate::StallCause::None`] when it delivered, was never asked, or
    /// simply had no fetch unit to consume. The processor's top-down
    /// cycle classifier probes this on empty fetch cycles; the default
    /// suits engines without an I-cache port.
    fn stall_probe(&self) -> crate::StallCause {
        crate::StallCause::None
    }

    /// Engine statistics.
    fn stats(&self) -> FetchEngineStats;

    /// Estimated storage cost of all prediction/fetch structures in bits
    /// (Table 1's cost column). Excludes the shared L1 I-cache.
    fn storage_bits(&self) -> u64;
}

/// Selector for constructing engines generically (used by the harness and
/// the processor builder).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// The stream fetch architecture (the paper's contribution).
    Stream,
    /// Alpha EV8 fetch + 2bcgskew.
    Ev8,
    /// FTB fetch + perceptron.
    Ftb,
    /// Trace cache + next trace predictor.
    TraceCache,
}

impl EngineKind {
    /// All four engines, in the paper's presentation order.
    pub const ALL: [EngineKind; 4] =
        [EngineKind::Ev8, EngineKind::Ftb, EngineKind::Stream, EngineKind::TraceCache];

    /// Builds the engine with its Table 2 configuration for the given
    /// pipeline width, starting fetch at `entry` (no prefetcher).
    pub fn build(self, width: usize, entry: Addr) -> Box<dyn FetchEngine> {
        self.build_with_prefetch(width, entry, &sfetch_prefetch::PrefetchConfig::none())
    }

    /// Builds the engine with an I-cache prefetch configuration attached.
    /// `PrefetchConfig::none()` is identical to [`EngineKind::build`].
    /// Uses the neutral [`crate::front::FrontPipeline::legacy`] front
    /// pipeline (shadow-branch discovery off).
    pub fn build_with_prefetch(
        self,
        width: usize,
        entry: Addr,
        pf: &sfetch_prefetch::PrefetchConfig,
    ) -> Box<dyn FetchEngine> {
        self.build_for(width, entry, pf, &crate::front::FrontPipeline::legacy())
    }

    /// Builds the engine with a prefetch configuration and a front-pipeline
    /// model. The [`crate::front::FrontPipeline`]'s timing knobs (depth,
    /// redirect penalty, misfetch bubble) live in the processor; the
    /// engine itself consumes only the shadow-branch-discovery switch.
    pub fn build_for(
        self,
        width: usize,
        entry: Addr,
        pf: &sfetch_prefetch::PrefetchConfig,
        front: &crate::front::FrontPipeline,
    ) -> Box<dyn FetchEngine> {
        match self {
            EngineKind::Stream => {
                // Streams end at taken branches by construction, so there is
                // no shadow region to mine — the stream engine has no
                // shadow-decode hook.
                Box::new(crate::stream::StreamEngine::table2(width, entry).with_prefetch(pf))
            }
            EngineKind::Ev8 => Box::new(
                crate::ev8::Ev8Engine::table2(width, entry).with_prefetch(pf).with_front(front),
            ),
            EngineKind::Ftb => Box::new(
                crate::ftb_engine::FtbEngine::table2(width, entry)
                    .with_prefetch(pf)
                    .with_front(front),
            ),
            EngineKind::TraceCache => Box::new(
                crate::trace_cache::TraceCacheEngine::table2(width, entry)
                    .with_prefetch(pf)
                    .with_front(front),
            ),
        }
    }

    /// The prefetch policy each engine's lookahead structure supports
    /// best: the decoupled front-ends (stream, FTB) direct prefetch from
    /// their FTQ + next-unit prediction; EV8 has no lookahead beyond the
    /// fetch cursor (next-line); the trace cache's misses are what the
    /// MANA-style record prefetcher is built for.
    pub fn natural_prefetch(self) -> sfetch_prefetch::PrefetchKind {
        match self {
            EngineKind::Stream | EngineKind::Ftb => sfetch_prefetch::PrefetchKind::StreamDirected,
            EngineKind::Ev8 => sfetch_prefetch::PrefetchKind::NextLine,
            EngineKind::TraceCache => sfetch_prefetch::PrefetchKind::Mana,
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineKind::Stream => f.write_str("Streams"),
            EngineKind::Ev8 => f.write_str("EV8+2bcgskew"),
            EngineKind::Ftb => f.write_str("FTB+perceptron"),
            EngineKind::TraceCache => f.write_str("Tcache+Tpred"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_unit_len_handles_zero() {
        assert_eq!(FetchEngineStats::default().mean_unit_len(), 0.0);
        let s = FetchEngineStats { units: 4, unit_insts: 40, ..Default::default() };
        assert_eq!(s.mean_unit_len(), 10.0);
    }

    #[test]
    fn kind_display_matches_paper_labels() {
        assert_eq!(EngineKind::Stream.to_string(), "Streams");
        assert_eq!(EngineKind::Ev8.to_string(), "EV8+2bcgskew");
        assert_eq!(EngineKind::ALL.len(), 4);
    }
}
