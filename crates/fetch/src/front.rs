//! Per-engine front-pipeline timing models.
//!
//! All four front-ends used to share one implicit front pipeline: a fixed
//! fetch→decode→rename latency, a fixed decode-redirect bubble, and a free
//! (zero-cycle) fetch restart after an execute-time squash. At warmed long
//! horizons that makes the engines converge — BENCH_5 measured a 1.07×
//! 8-wide IPC spread on the phased 50M workload against the paper's ~3.5×
//! (Fig. 8c) — because the only remaining difference between engines was
//! their prediction accuracy, not the *cost* of their pipeline
//! organizations.
//!
//! [`FrontPipeline`] makes those costs explicit and per-engine:
//!
//! * [`depth`](FrontPipeline::depth) — fetch→decode→rename stages. An
//!   instruction fetched at cycle `t` can issue no earlier than
//!   `t + depth`. In steady state the ROB hides this entirely; it is paid
//!   on every pipeline refill after a squash, so deep front pipes cost
//!   `depth` extra cycles per misprediction.
//! * [`redirect_penalty`](FrontPipeline::redirect_penalty) — extra cycles
//!   the fetch unit is held after an execute-time misprediction squash
//!   before it can fetch down the corrected path: predictor-organization
//!   recovery cost (history/RAS repair, overriding-cascade re-steer,
//!   fill-unit flush) that the depth term does not capture.
//! * [`decode_redirect_lat`](FrontPipeline::decode_redirect_lat) — the
//!   decode-time misfetch bubble: cycles to re-steer fetch when decode
//!   discovers a branch the prediction structures missed.
//! * [`shadow_decode`](FrontPipeline::shadow_decode) — decode-time
//!   *shadow-branch discovery* ("Exposing Shadow Branches", PAPERS.md):
//!   scan the fetched-but-unconsumed remainder of each I-cache line/fetch
//!   group for direct unconditional branches and pre-install them into the
//!   engine's branch structures, so first encounters don't misfetch.
//!
//! Every knob has a neutral setting: [`FrontPipeline::legacy`] reproduces
//! the pre-existing shared model cycle-for-cycle (pinned by the lockstep
//! differential tests in `tests/tests/front_pipeline.rs`), and
//! [`FrontPipeline::for_engine`] gives each engine the model derived from
//! its predictor organization (see ARCHITECTURE.md for the table).

use crate::engine::EngineKind;

/// Front-pipeline (fetch→decode→rename) timing model for one engine.
///
/// See the [module docs](self) for the meaning of each knob and
/// [`FrontPipeline::legacy`] for the neutral setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FrontPipeline {
    /// Fetch→decode→rename depth in cycles: an instruction fetched at
    /// cycle `t` is eligible to issue at `t + depth`. Must be ≥ 1.
    pub depth: u32,
    /// Extra cycles the fetch unit is held after an execute-time
    /// misprediction squash (0 = restart fetch the same cycle, the legacy
    /// behavior).
    pub redirect_penalty: u32,
    /// Decode-redirect (misfetch) bubble in cycles.
    pub decode_redirect_lat: u32,
    /// Enable decode-time shadow-branch discovery in already-fetched
    /// lines. Engines without a suitable branch structure on the misfetch
    /// path (the stream engine, whose streams end at taken branches by
    /// construction) ignore this knob.
    pub shadow_decode: bool,
}

impl FrontPipeline {
    /// The neutral model every engine shared before front pipelines became
    /// per-engine: 12-stage front (Table 2's 16-deep pipe minus the four
    /// back-end stages), free squash restart, 3-cycle misfetch bubble, no
    /// shadow-branch discovery. Reproduces the pre-existing engines
    /// cycle-for-cycle.
    pub const fn legacy() -> Self {
        FrontPipeline { depth: 12, redirect_penalty: 0, decode_redirect_lat: 3, shadow_decode: false }
    }

    /// The per-engine model derived from each predictor organization
    /// (Fig. 8 engines; rationale and table in ARCHITECTURE.md):
    ///
    /// * **EV8** — the deep EV8-style front pipe plus the 2bcgskew
    ///   overriding cascade: the final prediction arrives stages after
    ///   fetch, so squash recovery re-steers a long pipe.
    /// * **FTB** — short decoupled pipe; the FTQ restarts quickly and
    ///   decode shadow-discovers block terminators on sequential
    ///   (FTB-miss) fetches.
    /// * **Streams** — the paper's contribution: predictor off the
    ///   critical path, FTQ decoupling, partial-stream restart after
    ///   mispredictions (§3.2) make it the shortest recovery.
    /// * **Trace cache** — next-trace-predictor access plus fill-unit
    ///   flush on redirect sit between the two; the backup path
    ///   shadow-discovers branches into its BTB.
    pub fn for_engine(kind: EngineKind) -> Self {
        match kind {
            EngineKind::Ev8 => FrontPipeline {
                depth: 14,
                redirect_penalty: 6,
                decode_redirect_lat: 4,
                shadow_decode: false,
            },
            EngineKind::Ftb => FrontPipeline {
                depth: 9,
                redirect_penalty: 2,
                decode_redirect_lat: 2,
                shadow_decode: true,
            },
            EngineKind::Stream => FrontPipeline {
                depth: 8,
                redirect_penalty: 1,
                decode_redirect_lat: 2,
                shadow_decode: false,
            },
            EngineKind::TraceCache => FrontPipeline {
                depth: 11,
                redirect_penalty: 4,
                decode_redirect_lat: 3,
                shadow_decode: true,
            },
        }
    }

    /// Whether this is exactly the neutral [`FrontPipeline::legacy`] model.
    pub fn is_legacy(&self) -> bool {
        *self == Self::legacy()
    }
}

impl Default for FrontPipeline {
    fn default() -> Self {
        Self::legacy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_is_the_neutral_default() {
        assert_eq!(FrontPipeline::default(), FrontPipeline::legacy());
        assert!(FrontPipeline::legacy().is_legacy());
        let legacy = FrontPipeline::legacy();
        assert_eq!(legacy.depth, 12);
        assert_eq!(legacy.redirect_penalty, 0);
        assert_eq!(legacy.decode_redirect_lat, 3);
        assert!(!legacy.shadow_decode);
    }

    #[test]
    fn per_engine_models_are_distinct_and_non_legacy() {
        let models: Vec<FrontPipeline> =
            EngineKind::ALL.iter().map(|&k| FrontPipeline::for_engine(k)).collect();
        for (i, m) in models.iter().enumerate() {
            assert!(!m.is_legacy(), "engine model {i} must differ from legacy");
            assert!(m.depth >= 1);
            for other in &models[i + 1..] {
                assert_ne!(m, other, "per-engine models must be pairwise distinct");
            }
        }
        // The paper's ordering: EV8's recovery is the most expensive,
        // streams the cheapest.
        let ev8 = FrontPipeline::for_engine(EngineKind::Ev8);
        let stream = FrontPipeline::for_engine(EngineKind::Stream);
        assert!(ev8.depth + ev8.redirect_penalty > stream.depth + stream.redirect_penalty);
    }
}
