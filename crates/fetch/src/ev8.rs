//! The Alpha EV8 fetch baseline (§2.3, Table 2): an interleaved BTB plus
//! the 2bcgskew multiple branch predictor, fetching instructions from one
//! wide cache line *up to the first predicted-taken branch* each cycle
//! (the SEQ.3-style engine the paper cites).
//!
//! Branch identification is by BTB hit: a branch that has never been taken
//! is not in the BTB and is implicitly predicted not-taken (Calder &
//! Grunwald's insertion rule), which is also why first-taken branches cost
//! a full misprediction here.

use sfetch_cfg::CodeImage;
use sfetch_isa::wire::{WireReader, WireWriter};
use sfetch_isa::{Addr, BranchKind};
use sfetch_mem::MemoryHierarchy;
use sfetch_predictors::{Btb, GlobalHistory, Ras, TwoBcGskew};
use sfetch_prefetch::{Lookahead, PrefetchConfig};

use crate::bundle::{
    BranchPrediction, Checkpoint, CommittedInst, FetchedInst, ResolvedBranch,
};
use crate::engine::{FetchEngine, FetchEngineStats};
use crate::front::FrontPipeline;
use crate::port::IcachePort;

/// The EV8-style fetch engine.
#[derive(Debug)]
pub struct Ev8Engine {
    width: usize,
    pred: TwoBcGskew,
    btb: Btb,
    ras: Ras,
    ghist: GlobalHistory,
    pc: Addr,
    port: IcachePort,
    shadow: bool,
    stats: FetchEngineStats,
}

impl Ev8Engine {
    /// Builds the engine with the Table 2 configuration: 4×32K-entry
    /// 2bcgskew, 2048×4 BTB, 8-entry RAS.
    pub fn table2(width: usize, entry: Addr) -> Self {
        Ev8Engine {
            width,
            pred: TwoBcGskew::ev8(),
            btb: Btb::new(2048, 4),
            ras: Ras::new(8),
            ghist: GlobalHistory::new(),
            pc: entry,
            port: IcachePort::blocking(),
            shadow: false,
            stats: FetchEngineStats::default(),
        }
    }

    /// Attaches an I-cache prefetch configuration (builder-style). EV8 has
    /// no lookahead structure beyond its fetch cursor, so only the demand
    /// address reaches the prefetcher — next-line territory.
    pub fn with_prefetch(mut self, pf: &PrefetchConfig) -> Self {
        self.port = IcachePort::from_config(pf);
        self
    }

    /// Applies a front-pipeline model (builder-style). The engine consumes
    /// only the shadow-branch-discovery switch; the timing knobs live in
    /// the processor.
    pub fn with_front(mut self, front: &FrontPipeline) -> Self {
        self.shadow = front.shadow_decode;
        self
    }

    /// Decode-time shadow-branch discovery: the whole aligned fetch group
    /// was read from the I-cache, so decode can see the instructions past
    /// the group's exit point. Pre-install direct unconditional branches
    /// (always taken, statically-known target — exactly the class whose
    /// first encounter otherwise costs a misfetch) found there into the
    /// BTB. `probe` first so already-resident entries keep their LRU state.
    fn shadow_scan(&mut self, image: &CodeImage, mut pc: Addr, end: Addr) {
        while pc < end {
            let Some(ii) = image.inst_at(pc) else { break };
            if let Some(attr) = ii.control {
                if matches!(attr.kind, BranchKind::Jump | BranchKind::Call) {
                    if let Some(target) = attr.target {
                        if self.btb.probe(pc).is_none() {
                            self.btb.update(pc, target, attr.kind);
                            self.stats.shadow_installs += 1;
                        }
                    }
                }
            }
            pc = pc.next_inst();
        }
    }

    fn drive_prefetch(&mut self, now: u64, mem: &mut MemoryHierarchy) {
        if !self.port.has_prefetcher() {
            return;
        }
        let ctx = Lookahead {
            demand: Some(self.pc),
            queued: &[],
            predicted_next: None,
            line_bytes: mem.l1i_line_bytes(),
        };
        self.port.drive(now, mem, &ctx);
    }
}

impl FetchEngine for Ev8Engine {
    fn name(&self) -> &'static str {
        "ev8"
    }

    fn width(&self) -> usize {
        self.width
    }

    fn cycle(
        &mut self,
        now: u64,
        image: &CodeImage,
        mem: &mut MemoryHierarchy,
        out: &mut Vec<FetchedInst>,
    ) {
        self.port.begin_cycle(now, mem);
        self.drive_prefetch(now, mem);
        if self.port.stalled(now, &mut self.stats) {
            return;
        }
        if !self.port.demand(now, mem, self.pc, &mut self.stats) {
            return;
        }
        // EV8 fetches *aligned* instruction blocks: the cycle's window runs
        // from pc to the next width-aligned boundary, so a misaligned
        // branch target wastes the leading slots — one of the alignment
        // costs the decoupled front-ends avoid (§2.3, §3.4).
        let group_bytes = self.width as u64 * 4;
        let group_start = self.pc;
        let group_end = Addr::new(
            (group_start.get() / group_bytes + 1) * group_bytes,
        );
        let mut delivered = 0u64;
        let mut scan_from = group_start;
        while delivered < self.width as u64 {
            let pc = self.pc;
            if delivered > 0 && pc >= group_end {
                break;
            }
            let Some(ii) = image.inst_at(pc) else {
                // Wrong path off the image: idle until redirect.
                break;
            };
            scan_from = pc.next_inst();
            if ii.control.is_none() {
                out.push(FetchedInst { pc, inst: ii.inst, pred: None, cp: Checkpoint::default() });
                self.pc = pc.next_inst();
                delivered += 1;
                continue;
            }
            let attr = ii.control.expect("checked above");
            self.stats.predictor_lookups += 1;
            let btb_hit = self.btb.lookup(pc);
            let mut cp = Checkpoint {
                ghist: self.ghist.snapshot(),
                path: Default::default(),
                ras: self.ras.snapshot(),
            };
            let Some(entry) = btb_hit else {
                // Not in the BTB: the front-end does not even know this is
                // a branch — implicit not-taken.
                out.push(FetchedInst {
                    pc,
                    inst: ii.inst,
                    pred: Some(BranchPrediction {
                        taken: false,
                        target: attr.target.unwrap_or(Addr::NULL),
                    }),
                    cp,
                });
                self.pc = pc.next_inst();
                delivered += 1;
                continue;
            };
            self.stats.predictor_hits += 1;
            match attr.kind {
                BranchKind::Cond => {
                    let dir = self.pred.predict(pc, self.ghist.spec());
                    self.ghist.push_spec(dir);
                    out.push(FetchedInst {
                        pc,
                        inst: ii.inst,
                        pred: Some(BranchPrediction { taken: dir, target: entry.target }),
                        cp,
                    });
                    delivered += 1;
                    if dir {
                        self.pc = entry.target;
                        break; // taken branch ends the fetch group
                    }
                    self.pc = pc.next_inst();
                }
                BranchKind::Jump => {
                    out.push(FetchedInst {
                        pc,
                        inst: ii.inst,
                        pred: Some(BranchPrediction { taken: true, target: entry.target }),
                        cp,
                    });
                    delivered += 1;
                    self.pc = entry.target;
                    break;
                }
                BranchKind::Call | BranchKind::IndirectCall => {
                    self.ras.push(pc.next_inst());
                    cp.ras = self.ras.snapshot(); // post-op shadow
                    let target = if attr.kind == BranchKind::Call {
                        attr.target.expect("direct calls have targets")
                    } else {
                        entry.target
                    };
                    out.push(FetchedInst {
                        pc,
                        inst: ii.inst,
                        pred: Some(BranchPrediction { taken: true, target }),
                        cp,
                    });
                    delivered += 1;
                    self.pc = target;
                    break;
                }
                BranchKind::Return => {
                    let target = self.ras.pop();
                    cp.ras = self.ras.snapshot();
                    out.push(FetchedInst {
                        pc,
                        inst: ii.inst,
                        pred: Some(BranchPrediction { taken: true, target }),
                        cp,
                    });
                    delivered += 1;
                    self.pc = target;
                    break;
                }
                BranchKind::IndirectJump => {
                    out.push(FetchedInst {
                        pc,
                        inst: ii.inst,
                        pred: Some(BranchPrediction { taken: true, target: entry.target }),
                        cp,
                    });
                    delivered += 1;
                    self.pc = entry.target;
                    break;
                }
            }
        }
        if delivered > 0 {
            self.stats.units += 1;
            self.stats.unit_insts += delivered;
            if self.shadow {
                self.shadow_scan(image, scan_from, group_end);
            }
        }
    }

    fn redirect(&mut self, now: u64, target: Addr, cp: &Checkpoint, resolved: &ResolvedBranch) {
        self.pc = target;
        self.ghist.restore(cp.ghist);
        if resolved.kind == Some(BranchKind::Cond) {
            self.ghist.push_spec(resolved.taken);
        }
        self.ras.restore(cp.ras);
        self.port.redirect(now);
    }

    fn commit(&mut self, ci: &CommittedInst) {
        let Some(c) = ci.control else { return };
        if c.kind == BranchKind::Cond && self.btb.probe(ci.pc).is_some() {
            // Train and advance the retired history only for branches the
            // front-end *identifies* (BTB residents): unidentified branches
            // never push speculative history at fetch, so pushing them here
            // would skew the two registers apart — most visibly with
            // layout-optimized code where many branches are never taken.
            self.pred.update(ci.pc, self.ghist.retired(), c.taken);
            self.ghist.push_retired(c.taken);
        }
        if c.taken {
            self.btb.update(ci.pc, c.target, c.kind);
        }
    }

    fn stall_probe(&self) -> crate::StallCause {
        self.port.last_stall()
    }

    fn warm_state(&self) -> Option<Vec<u8>> {
        let mut w = WireWriter::new();
        w.u32(crate::engine::WARM_FORMAT_VERSION);
        self.pred.save_wire(&mut w);
        self.btb.save_wire(&mut w);
        self.ras.save_wire(&mut w);
        self.ghist.save_wire(&mut w);
        self.stats.save_wire(&mut w);
        Some(w.into_bytes())
    }

    fn load_warm_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut r = WireReader::new(bytes);
        let v = r.u32()?;
        if v != crate::engine::WARM_FORMAT_VERSION {
            return Err(format!("warm-state version {v} != {}", crate::engine::WARM_FORMAT_VERSION));
        }
        self.pred.load_wire(&mut r)?;
        self.btb.load_wire(&mut r)?;
        self.ras.load_wire(&mut r)?;
        self.ghist = GlobalHistory::load_wire(&mut r)?;
        self.stats = FetchEngineStats::load_wire(&mut r)?;
        r.finish()
    }

    fn stats(&self) -> FetchEngineStats {
        self.stats
    }

    fn storage_bits(&self) -> u64 {
        self.pred.storage_bits()
            + self.btb.storage_bits()
            + self.ras.storage_bits()
            + self.port.storage_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::CommittedControl;
    use sfetch_cfg::builder::CfgBuilder;
    use sfetch_cfg::{layout, CondBehavior, TripCount};
    use sfetch_mem::MemoryConfig;

    fn loop_image() -> (sfetch_cfg::Cfg, CodeImage) {
        let mut bld = CfgBuilder::new();
        let f = bld.add_func("main");
        let body = bld.add_block(f, 4);
        let exit = bld.add_block(f, 1);
        bld.set_cond(body, body, exit, CondBehavior::Loop { trip: TripCount::Fixed(1 << 30) });
        bld.set_return(exit);
        let cfg = bld.finish().expect("valid");
        let img = CodeImage::build(&cfg, &layout::natural(&cfg));
        (cfg, img)
    }

    fn run_cycles(eng: &mut Ev8Engine, img: &CodeImage, mem: &mut MemoryHierarchy, n: u64) -> Vec<FetchedInst> {
        let mut out = Vec::new();
        for t in 0..n {
            eng.cycle(t, img, mem, &mut out);
        }
        out
    }

    #[test]
    fn unknown_branch_is_implicitly_not_taken() {
        let (_cfg, img) = loop_image();
        let mut mem = MemoryHierarchy::new(MemoryConfig::table2(8));
        let mut eng = Ev8Engine::table2(8, img.entry());
        let out = run_cycles(&mut eng, &img, &mut mem, 200);
        let branch = out.iter().find(|f| f.inst.is_branch()).expect("branch fetched");
        assert!(!branch.pred.expect("pred").taken, "BTB-cold branch must be implicit NT");
    }

    #[test]
    fn trained_btb_and_gskew_follow_the_loop() {
        let (_cfg, img) = loop_image();
        let mut mem = MemoryHierarchy::new(MemoryConfig::table2(8));
        let mut eng = Ev8Engine::table2(8, img.entry());
        let branch_pc = img.entry().offset_insts(4);
        for _ in 0..16 {
            eng.commit(&CommittedInst {
                pc: branch_pc,
                control: Some(CommittedControl {
                    kind: BranchKind::Cond,
                    taken: true,
                    target: img.entry(),
                    next_pc: img.entry(),
                    is_fixup: false,
                }),
                mispredicted: false,
            });
        }
        let out = run_cycles(&mut eng, &img, &mut mem, 300);
        let br = out.iter().rev().find(|f| f.pc == branch_pc).expect("branch fetched");
        let p = br.pred.expect("pred");
        assert!(p.taken, "trained loop branch predicted taken");
        assert_eq!(p.target, img.entry());
        // EV8 groups end at the taken branch: mean unit <= 5 insts here.
        assert!(eng.stats().mean_unit_len() <= 5.01);
    }

    #[test]
    fn taken_branch_ends_fetch_group() {
        let (_cfg, img) = loop_image();
        let mut mem = MemoryHierarchy::new(MemoryConfig::table2(8));
        let mut eng = Ev8Engine::table2(8, img.entry());
        let branch_pc = img.entry().offset_insts(4);
        for _ in 0..16 {
            eng.commit(&CommittedInst {
                pc: branch_pc,
                control: Some(CommittedControl {
                    kind: BranchKind::Cond,
                    taken: true,
                    target: img.entry(),
                    next_pc: img.entry(),
                    is_fixup: false,
                }),
                mispredicted: false,
            });
        }
        let mut out = Vec::new();
        // Warm the icache first.
        run_cycles(&mut eng, &img, &mut mem, 130);
        eng.redirect(
            131,
            img.entry(),
            &Checkpoint::default(),
            &ResolvedBranch { pc: branch_pc, kind: Some(BranchKind::Cond), taken: true, target: img.entry() },
        );
        for t in 132..133 {
            eng.cycle(t, &img, &mut mem, &mut out);
        }
        // One cycle: 4 body + taken branch = 5 (not 8).
        assert_eq!(out.len(), 5, "group stops at the taken branch");
    }

    #[test]
    fn redirect_restores_history() {
        let (_cfg, img) = loop_image();
        let mut eng = Ev8Engine::table2(8, img.entry());
        eng.ghist.push_spec(true);
        let snap = eng.ghist.snapshot();
        eng.ghist.push_spec(false);
        eng.ghist.push_spec(false);
        eng.redirect(
            10,
            img.entry(),
            &Checkpoint { ghist: snap, path: Default::default(), ras: eng.ras.snapshot() },
            &ResolvedBranch { pc: img.entry(), kind: Some(BranchKind::Cond), taken: true, target: img.entry() },
        );
        // restored + actual outcome appended
        assert_eq!(eng.ghist.spec(), (snap << 1) | 1);
    }

    #[test]
    fn storage_bits_dominated_by_2bcgskew() {
        let (_cfg, img) = loop_image();
        let eng = Ev8Engine::table2(8, img.entry());
        // 32KB of counters = 262144 bits plus BTB/RAS.
        assert!(eng.storage_bits() > 262_144);
    }
}
