//! # sfetch-fetch
//!
//! The four fetch front-ends evaluated in *"Fetching instruction streams"*
//! (MICRO-35, 2002), behind one [`FetchEngine`] interface:
//!
//! * [`stream::StreamEngine`] — **the paper's contribution**: next stream
//!   predictor + FTQ + wide-line I-cache, sequential fallback on predictor
//!   misses, partial streams after mispredictions (§3).
//! * [`ev8::Ev8Engine`] — the Alpha EV8 baseline: 2bcgskew + BTB, fetching
//!   up to the first predicted-taken branch each cycle (§2.3).
//! * [`ftb_engine::FtbEngine`] — the decoupled FTB front-end with a
//!   perceptron direction predictor (§2.1).
//! * [`trace_cache::TraceCacheEngine`] — trace cache + next trace predictor
//!   with selective trace storage and a BTB/gshare secondary path (§2.2).
//!
//! The engines speculate against the [`sfetch_cfg::CodeImage`] (so wrong
//! paths fetch real bytes and pollute the I-cache) and carry O(1)
//! [`Checkpoint`]s on every delivered instruction so the processor can
//! repair speculative predictor state at recovery, exactly as §3.2/§4.1
//! describe.
//!
//! Every engine demand-fetches through one [`port::IcachePort`], which
//! also issues `sfetch_prefetch` probes from the engine's lookahead
//! structure (FTQ occupancy, predicted next stream, next trace) when the
//! non-blocking L1i miss pipeline is enabled.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bundle;
pub mod decode;
pub mod engine;
pub mod ev8;
pub mod front;
pub mod ftb_engine;
pub mod ftq;
pub mod port;
pub mod stream;
pub mod trace_cache;

pub use bundle::{
    BranchPrediction, Checkpoint, CommittedControl, CommittedInst, FetchedInst, ResolvedBranch,
};
pub use decode::{DecodeCache, DecodedInst};
pub use engine::{EngineKind, FetchEngine, FetchEngineStats, WARM_FORMAT_VERSION};
pub use ev8::Ev8Engine;
pub use front::FrontPipeline;
pub use ftb_engine::FtbEngine;
pub use ftq::{FetchRequest, Ftq};
pub use port::{IcachePort, StallCause};
pub use stream::StreamEngine;
pub use trace_cache::TraceCacheEngine;
