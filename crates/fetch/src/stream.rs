//! The **stream fetch engine** (§3, Fig. 4) — the paper's contribution.
//!
//! Pipeline: the *next stream predictor* emits one fetch request per cycle
//! into the FTQ; the I-cache stage consumes the head request one wide line
//! at a time, updating the request in place (Fig. 6). On a predictor miss
//! the engine falls back to sequential fetching (one line per request)
//! until the predictor hits again or a misprediction redirects fetch
//! (§3.2). After a misprediction the front-end resumes at the recovery
//! point — a *partial stream* — with no rollback (§1).

use sfetch_cfg::CodeImage;
use sfetch_isa::wire::{WireReader, WireWriter};
use sfetch_isa::{Addr, BranchKind};
use sfetch_mem::MemoryHierarchy;
use sfetch_predictors::{
    NextStreamPredictor, Ras, StreamPredictorConfig, StreamUpdate,
};
use sfetch_prefetch::{Lookahead, PrefetchConfig};

use crate::bundle::{
    BranchPrediction, Checkpoint, CommittedInst, FetchedInst, ResolvedBranch,
};
use crate::decode::DecodeCache;
use crate::engine::{FetchEngine, FetchEngineStats};
use crate::ftq::{FetchRequest, Ftq};
use crate::port::IcachePort;

/// One open (still accumulating) stream on the commit side.
///
/// Several streams can be open at once: the stream begun at the last taken
/// branch, plus a *partial stream* for every misprediction recovery inside
/// it (§1). They all close at the next committed taken branch and all train
/// the predictor — this is what lets a predicted-taken terminator that fell
/// through be corrected by the longer observed stream, while the partial
/// stream entry serves the front-end's post-recovery lookups.
#[derive(Debug, Clone, Copy)]
struct OpenStream {
    start: Addr,
    len: u32,
    mispredicted: bool,
}

/// Maximum simultaneously-open streams (nested recoveries are rare).
const MAX_OPEN: usize = 6;

/// The stream fetch engine.
///
/// ```
/// use sfetch_fetch::{StreamEngine, FetchEngine};
/// use sfetch_isa::Addr;
///
/// let eng = StreamEngine::table2(8, Addr::new(0x40_0000));
/// assert_eq!(eng.name(), "streams");
/// assert_eq!(eng.width(), 8);
/// ```
#[derive(Debug)]
pub struct StreamEngine {
    width: usize,
    pred: NextStreamPredictor,
    ras: Ras,
    ftq: Ftq,
    pred_pc: Addr,
    port: IcachePort,
    max_stream: u32,
    open: Vec<OpenStream>,
    /// Reusable lookahead scratch for the prefetch drive stage.
    la_buf: Vec<(Addr, u32)>,
    /// Decoded-line cache serving the fetch inner loop; survives
    /// redirects, so post-squash re-fetches of recently decoded lines
    /// skip the per-slot image walk. Simulated results are bit-identical
    /// with it on or off. **Off by default**: the ROADMAP hypothesis that
    /// wrong-path re-decode costs host time did not survive measurement —
    /// with the interned image a decode is one bounds-checked array read,
    /// and the cache's indexing overhead makes it a ~2–3% *loss* at ROB
    /// 1024 (`redecode_ab` in BENCH_4.json). Kept behind this builder
    /// for measurement and as the hook if decode ever grows real work.
    decode: Option<DecodeCache>,
    stats: FetchEngineStats,
}

impl StreamEngine {
    /// Builds the engine with the Table 2 configuration.
    pub fn table2(width: usize, entry: Addr) -> Self {
        Self::new(width, entry, StreamPredictorConfig::table2(), 4, 8)
    }

    /// Builds the engine with explicit predictor/FTQ/RAS parameters (used by
    /// ablation benches).
    pub fn new(
        width: usize,
        entry: Addr,
        pred_config: StreamPredictorConfig,
        ftq_entries: usize,
        ras_entries: usize,
    ) -> Self {
        let max_stream = pred_config.max_len;
        StreamEngine {
            width,
            pred: NextStreamPredictor::new(pred_config),
            ras: Ras::new(ras_entries),
            ftq: Ftq::new(ftq_entries),
            pred_pc: entry,
            port: IcachePort::blocking(),
            max_stream,
            open: Vec::with_capacity(MAX_OPEN),
            la_buf: Vec::with_capacity(ftq_entries),
            decode: None,
            stats: FetchEngineStats::default(),
        }
    }

    /// Attaches an I-cache prefetch configuration (builder-style).
    pub fn with_prefetch(mut self, pf: &PrefetchConfig) -> Self {
        self.port = IcachePort::from_config(pf);
        self
    }

    /// Enables the decoded-line cache (builder-style). Used by the
    /// `redecode_ab` measurement leg and the differential tests; the
    /// simulated results are bit-identical with the cache on or off.
    pub fn with_decode_cache(mut self) -> Self {
        self.decode = Some(DecodeCache::new());
        self
    }

    /// Disables the decoded-line cache (builder-style; the default).
    pub fn without_decode_cache(mut self) -> Self {
        self.decode = None;
        self
    }

    /// Host-side decoded-line cache counters `(hits, misses)`; zeros when
    /// the cache is disabled.
    pub fn decode_counters(&self) -> (u64, u64) {
        self.decode.as_ref().map_or((0, 0), DecodeCache::counters)
    }

    /// Whether a front-end tracking this engine's predictor state would
    /// have mispredicted the committing branch `c` — evaluated against
    /// the *retired*-path probe of the cascade (the speculative register
    /// tracks the retired one in steady state). Used only by functional
    /// warming to synthesize misprediction bits.
    fn would_mispredict(&self, c: &crate::bundle::CommittedControl) -> bool {
        let Some(o) = self.open.first() else {
            // No open stream yet (cold start): the sequential fallback
            // fetches not-taken paths, so any taken branch redirects.
            return c.taken;
        };
        // Stream length including this branch, as commit() will count it.
        let would_len = o.len + 1;
        match self.pred.probe_retired(o.start) {
            Some(p) => {
                let terminates = p.kind.is_some() && p.len == would_len;
                if c.taken {
                    // Correct iff the stream was predicted to end at this
                    // instruction toward the right target (returns resolve
                    // through the RAS and are assumed repaired).
                    !(terminates && (p.kind == Some(BranchKind::Return) || p.next == c.next_pc))
                } else {
                    // Fell through: wrong iff predicted to terminate here.
                    terminates
                }
            }
            // Predictor miss: sequential fallback predicts not-taken.
            None => c.taken,
        }
    }

    /// The underlying next stream predictor (for inspection in tests and
    /// ablation reports).
    pub fn predictor(&self) -> &NextStreamPredictor {
        &self.pred
    }

    /// Prefetch drive stage: hand the engine's whole lookahead — every
    /// FTQ request (the head's unread tail included) and the predicted
    /// next stream start — to the prefetcher (§3.3's lookahead argument).
    fn drive_prefetch(&mut self, now: u64, mem: &mut MemoryHierarchy) {
        if !self.port.has_prefetcher() {
            return;
        }
        self.la_buf.clear();
        self.la_buf.extend(self.ftq.iter().map(|r| (r.cur, r.remaining.max(1))));
        let ctx = Lookahead {
            demand: self.ftq.head_addr(),
            queued: &self.la_buf,
            predicted_next: Some(self.pred_pc),
            line_bytes: mem.l1i_line_bytes(),
        };
        self.port.drive(now, mem, &ctx);
    }

    /// Prediction stage: one lookup per cycle when the FTQ has space.
    fn prediction_stage(&mut self, mem: &MemoryHierarchy) {
        if !self.ftq.has_space() {
            return;
        }
        let start = self.pred_pc;
        self.stats.predictor_lookups += 1;
        let prediction = self.pred.predict(start);
        // The request start enters the speculative path register whether
        // predicted or fallback — mirroring the commit-side update register.
        self.pred.notify_fetch(start);
        let path = self.pred.snapshot();
        let ras_pre = self.ras.snapshot();
        match prediction {
            Some(p) => {
                self.stats.predictor_hits += 1;
                // Cap-split streams continue sequentially by construction.
                let mut next = if p.kind.is_none() {
                    start.offset_insts(u64::from(p.len))
                } else {
                    p.next
                };
                match p.kind {
                    Some(BranchKind::Call) | Some(BranchKind::IndirectCall) => {
                        // Return address: the instruction after the stream.
                        self.ras.push(start.offset_insts(u64::from(p.len)));
                    }
                    Some(BranchKind::Return) => {
                        next = self.ras.pop();
                    }
                    _ => {}
                }
                let ras_post = self.ras.snapshot();
                self.ftq.push(FetchRequest {
                    start,
                    cur: start,
                    remaining: p.len,
                    term: p.kind,
                    next,
                    predicted: true,
                    cp_embedded: Checkpoint { ghist: 0, path, ras: ras_pre },
                    cp_term: Checkpoint { ghist: 0, path, ras: ras_post },
                });
                self.pred_pc = next;
            }
            None => {
                // Sequential fallback: request the rest of the current
                // cache line; retry the predictor at the next line (§3.2).
                let line = mem.l1i_line_bytes();
                let len = (start.insts_to_line_end(line) as u32).max(1);
                let next = start.offset_insts(u64::from(len));
                let cp = Checkpoint { ghist: 0, path, ras: ras_pre };
                self.ftq.push(FetchRequest {
                    start,
                    cur: start,
                    remaining: len,
                    term: None,
                    next,
                    predicted: false,
                    cp_embedded: cp,
                    cp_term: cp,
                });
                self.pred_pc = next;
            }
        }
    }
}

impl FetchEngine for StreamEngine {
    fn name(&self) -> &'static str {
        "streams"
    }

    fn width(&self) -> usize {
        self.width
    }

    fn cycle(
        &mut self,
        now: u64,
        image: &CodeImage,
        mem: &mut MemoryHierarchy,
        out: &mut Vec<FetchedInst>,
    ) {
        self.port.begin_cycle(now, mem);
        // The prediction stage keeps running while the I-cache waits — the
        // decoupling the FTQ provides (§3.3) — and the prefetcher runs
        // ahead of fetch over everything the FTQ already names.
        self.prediction_stage(mem);
        self.drive_prefetch(now, mem);

        if self.port.stalled(now, &mut self.stats) {
            return;
        }
        let Some(head) = self.ftq.head() else { return };
        let req = *head;
        if !self.port.demand(now, mem, req.cur, &mut self.stats) {
            return;
        }
        let line = mem.l1i_line_bytes();
        let k = (self.width as u32)
            .min(req.remaining)
            .min(req.cur.insts_to_line_end(line) as u32)
            .max(1);
        let term_pc = req.term_pc();
        if let Some(dc) = self.decode.as_mut() {
            // Cached decode: the fetch group never crosses a line (`k` is
            // clipped to the line end), so one cache lookup serves it. A
            // short run means the group ran off the image mid-way — the
            // per-slot path below would have delivered the same prefix
            // before going idle.
            let run = dc.run(image, req.cur, k, line);
            let mut pc = req.cur;
            for di in run {
                let is_term = req.term.is_some() && pc == term_pc;
                let pred = if di.is_control {
                    Some(if is_term {
                        BranchPrediction { taken: true, target: req.next }
                    } else {
                        // Embedded branches are implicitly not-taken (§3.2).
                        BranchPrediction { taken: false, target: di.target }
                    })
                } else {
                    None
                };
                let cp = if is_term { req.cp_term } else { req.cp_embedded };
                out.push(FetchedInst { pc, inst: di.inst, pred, cp });
                pc = pc.next_inst();
            }
            if run.len() < k as usize {
                // Wrong path ran off the image: go idle until redirected.
                self.ftq.clear();
                return;
            }
        } else {
            for i in 0..k {
                let pc = req.cur.offset_insts(u64::from(i));
                let Some(ii) = image.inst_at(pc) else {
                    // Wrong path ran off the image: go idle until redirected.
                    self.ftq.clear();
                    return;
                };
                let is_term = req.term.is_some() && pc == term_pc;
                let pred = ii.control.map(|attr| {
                    if is_term {
                        BranchPrediction { taken: true, target: req.next }
                    } else {
                        // Embedded branches are implicitly not-taken (§3.2).
                        BranchPrediction { taken: false, target: attr.target.unwrap_or(Addr::NULL) }
                    }
                });
                let cp = if is_term { req.cp_term } else { req.cp_embedded };
                out.push(FetchedInst { pc, inst: ii.inst, pred, cp });
            }
        }
        let head = self.ftq.head().expect("head exists");
        head.consume(k);
        if head.is_empty() {
            let done = self.ftq.pop().expect("pop head");
            self.stats.units += 1;
            self.stats.unit_insts += u64::from(done.len());
        }
    }

    fn redirect(&mut self, now: u64, target: Addr, cp: &Checkpoint, _resolved: &ResolvedBranch) {
        self.ftq.clear();
        self.pred_pc = target;
        self.pred.restore(cp.path);
        self.ras.restore(cp.ras);
        self.port.redirect(now);
    }

    fn commit(&mut self, ci: &CommittedInst) {
        if self.open.is_empty() {
            self.open.push(OpenStream { start: ci.pc, len: 0, mispredicted: false });
        }
        for o in &mut self.open {
            o.len += 1;
        }
        let taken = ci.control.is_some_and(|c| c.taken);
        if taken {
            // The taken branch closes every open stream — the original and
            // any partial streams opened at recoveries inside it. Training
            // and path pushes interleave oldest-first, mirroring the order
            // the speculative side issued the corresponding requests.
            let c = ci.control.expect("taken implies control");
            let mispredicted_here = ci.mispredicted;
            for o in std::mem::take(&mut self.open) {
                self.pred.train(StreamUpdate {
                    start: o.start,
                    len: o.len,
                    kind: Some(c.kind),
                    next: c.next_pc,
                    mispredicted: o.mispredicted || mispredicted_here,
                });
                self.pred.notify_retire(o.start);
            }
            self.open.push(OpenStream { start: c.next_pc, len: 0, mispredicted: false });
            return;
        }
        if ci.mispredicted {
            // A predicted-taken terminator fell through (or a misfetch was
            // repaired): the open streams keep accumulating — the longer
            // observed stream will correct the stale entry — and a *partial
            // stream* opens at the recovery point for the front-end's
            // post-recovery lookups (§1).
            for o in &mut self.open {
                o.mispredicted = true;
            }
            if self.open.len() < MAX_OPEN {
                self.open.push(OpenStream {
                    start: ci.next_pc(),
                    len: 0,
                    mispredicted: false,
                });
            }
            return;
        }
        // Length cap: close oversized opens as sequential splits (bounded
        // length field), opening their continuations.
        if self.open.first().is_some_and(|o| o.len >= self.max_stream) {
            let next = ci.next_pc();
            let max = self.max_stream;
            let mut continued = false;
            let mut rest = Vec::with_capacity(self.open.len());
            for o in std::mem::take(&mut self.open) {
                if o.len >= max {
                    self.pred.train(StreamUpdate {
                        start: o.start,
                        len: o.len,
                        kind: None,
                        next,
                        mispredicted: o.mispredicted,
                    });
                    self.pred.notify_retire(o.start);
                    continued = true;
                } else {
                    rest.push(o);
                }
            }
            self.open = rest;
            if continued && self.open.len() < MAX_OPEN {
                self.open.push(OpenStream { start: next, len: 0, mispredicted: false });
            }
        }
    }

    /// Self-checking functional warming: the sampler cannot know which
    /// instructions a real front-end would have mispredicted (no timing
    /// model runs during fast-forward), but the engine can — by probing
    /// its own predictor under the retired path before each branch
    /// commits. The synthesized `mispredicted` bits then drive the normal
    /// commit logic, which opens *partial streams* at exactly the
    /// recovery points a real run trains (§1). Without this, warmed
    /// predictors lack every partial-stream entry and post-recovery
    /// lookups all miss — measured as a double-digit IPC underestimate
    /// in sampled windows.
    fn warm_block(&mut self, cis: &[CommittedInst]) {
        for ci in cis {
            let mut ci = *ci;
            if let Some(c) = ci.control {
                ci.mispredicted = self.would_mispredict(&c);
            }
            self.commit(&ci);
        }
    }

    fn decode_counters(&self) -> (u64, u64) {
        StreamEngine::decode_counters(self)
    }

    fn stall_probe(&self) -> crate::StallCause {
        self.port.last_stall()
    }

    fn warm_state(&self) -> Option<Vec<u8>> {
        let mut w = WireWriter::new();
        w.u32(crate::engine::WARM_FORMAT_VERSION);
        self.pred.save_wire(&mut w);
        self.ras.save_wire(&mut w);
        w.u64(self.open.len() as u64);
        for s in &self.open {
            let OpenStream { start, len, mispredicted } = s;
            w.addr(*start);
            w.u32(*len);
            w.bool(*mispredicted);
        }
        self.stats.save_wire(&mut w);
        Some(w.into_bytes())
    }

    fn load_warm_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut r = WireReader::new(bytes);
        let v = r.u32()?;
        if v != crate::engine::WARM_FORMAT_VERSION {
            return Err(format!("warm-state version {v} != {}", crate::engine::WARM_FORMAT_VERSION));
        }
        self.pred.load_wire(&mut r)?;
        self.ras.load_wire(&mut r)?;
        let n = r.u64()? as usize;
        if n > MAX_OPEN {
            return Err(format!("{n} open streams exceeds the engine cap {MAX_OPEN}"));
        }
        self.open.clear();
        for _ in 0..n {
            self.open.push(OpenStream {
                start: r.addr()?,
                len: r.u32()?,
                mispredicted: r.bool()?,
            });
        }
        self.stats = FetchEngineStats::load_wire(&mut r)?;
        r.finish()
    }

    fn stats(&self) -> FetchEngineStats {
        let mut s = self.stats;
        let ps = self.pred.stats();
        s.predictor_lookups = ps.lookups;
        s.predictor_hits = ps.hits_first + ps.hits_second;
        s
    }

    fn storage_bits(&self) -> u64 {
        self.pred.storage_bits() + self.ras.storage_bits() + self.port.storage_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfetch_cfg::builder::CfgBuilder;
    use sfetch_cfg::{layout, CondBehavior, TripCount};
    use sfetch_mem::{MemoryConfig, MemoryHierarchy};

    fn setup() -> (sfetch_cfg::Cfg, CodeImage) {
        // A simple hot loop: body of 10 insts + latch, trip 100.
        let mut bld = CfgBuilder::new();
        let f = bld.add_func("main");
        let body = bld.add_block(f, 10);
        let exit = bld.add_block(f, 1);
        bld.set_cond(body, body, exit, CondBehavior::Loop { trip: TripCount::Fixed(1 << 30) });
        bld.set_return(exit);
        let cfg = bld.finish().expect("valid");
        let img = CodeImage::build(&cfg, &layout::natural(&cfg));
        (cfg, img)
    }

    #[test]
    fn cold_start_uses_sequential_fallback() {
        let (_cfg, img) = setup();
        let mut mem = MemoryHierarchy::new(MemoryConfig::table2(8));
        let mut eng = StreamEngine::table2(8, img.entry());
        let mut out = Vec::new();
        // Cycle 0: icache cold miss -> nothing delivered.
        eng.cycle(0, &img, &mut mem, &mut out);
        assert!(out.is_empty(), "cold icache miss stalls delivery");
        // After the miss latency, instructions arrive.
        let mut t = 1;
        while out.is_empty() && t < 200 {
            eng.cycle(t, &img, &mut mem, &mut out);
            t += 1;
        }
        assert!(!out.is_empty(), "fallback fetch must deliver");
        assert_eq!(out[0].pc, img.entry());
        // Fallback requests carry implicit-NT predictions on branches.
        let br = out.iter().find(|f| f.inst.is_branch());
        if let Some(b) = br {
            assert!(!b.pred.expect("branch has pred").taken);
        }
    }

    #[test]
    fn trained_predictor_issues_full_stream_requests() {
        let (_cfg, img) = setup();
        let mut mem = MemoryHierarchy::new(MemoryConfig::table2(8));
        let mut eng = StreamEngine::table2(8, img.entry());
        // Train: the loop stream is (entry, 11 insts, cond, -> entry).
        for _ in 0..4 {
            for i in 0..10u64 {
                eng.commit(&CommittedInst {
                    pc: img.entry().offset_insts(i),
                    control: None,
                    mispredicted: false,
                });
            }
            eng.commit(&CommittedInst {
                pc: img.entry().offset_insts(10),
                control: Some(crate::bundle::CommittedControl {
                    kind: BranchKind::Cond,
                    taken: true,
                    target: img.entry(),
                    next_pc: img.entry(),
                    is_fixup: false,
                }),
                mispredicted: false,
            });
        }
        // Now fetch: once warm, the engine should deliver the whole loop
        // body as one stream and chain to itself.
        let mut out = Vec::new();
        for t in 0..400 {
            eng.cycle(t, &img, &mut mem, &mut out);
        }
        let stats = eng.stats();
        assert!(stats.predictor_hits > 0, "predictor must hit after training");
        // The terminator must be predicted taken back to the entry.
        let term = out
            .iter()
            .find(|f| f.pc == img.entry().offset_insts(10) && f.pred.is_some())
            .expect("terminator fetched");
        let p = term.pred.expect("pred");
        assert!(p.taken);
        assert_eq!(p.target, img.entry());
        // Fetch units should average ~11 instructions (the whole stream).
        assert!(stats.mean_unit_len() > 8.0, "stream units span the loop body");
    }

    #[test]
    fn redirect_restores_and_resumes() {
        let (_cfg, img) = setup();
        let mut mem = MemoryHierarchy::new(MemoryConfig::table2(8));
        let mut eng = StreamEngine::table2(8, img.entry());
        let mut out = Vec::new();
        // Enough cycles to ride out the cold I-cache miss (1+15+100).
        for t in 0..200 {
            eng.cycle(t, &img, &mut mem, &mut out);
        }
        let cp = out.last().expect("delivered").cp;
        out.clear();
        let target = img.entry().offset_insts(5);
        eng.redirect(
            200,
            target,
            &cp,
            &ResolvedBranch { pc: img.entry(), kind: Some(BranchKind::Cond), taken: true, target },
        );
        // Next deliveries start at the redirect target (partial stream).
        let mut t = 201;
        while out.is_empty() && t < 500 {
            eng.cycle(t, &img, &mut mem, &mut out);
            t += 1;
        }
        assert_eq!(out[0].pc, target, "fetch resumes at the recovery point");
    }

    #[test]
    fn commit_splits_long_sequential_runs() {
        let (_cfg, img) = setup();
        let mut eng = StreamEngine::table2(8, img.entry());
        // Commit 200 straight-line instructions (pretend): builder must
        // split at max_stream and train sequential continuations.
        for i in 0..200u64 {
            eng.commit(&CommittedInst {
                pc: img.entry().offset_insts(i),
                control: None,
                mispredicted: false,
            });
        }
        let pred = eng.pred.predict(img.entry());
        assert!(pred.is_some(), "cap-split streams are stored");
        let p = pred.expect("hit");
        assert_eq!(p.kind, None);
        assert_eq!(p.len, eng.max_stream);
    }

    #[test]
    fn mispredicted_fallthrough_starts_partial_stream() {
        let (_cfg, img) = setup();
        let mut eng = StreamEngine::table2(8, img.entry());
        // Commit: 3 insts, then a mispredicted NOT-taken branch.
        for i in 0..3u64 {
            eng.commit(&CommittedInst {
                pc: img.entry().offset_insts(i),
                control: None,
                mispredicted: false,
            });
        }
        eng.commit(&CommittedInst {
            pc: img.entry().offset_insts(3),
            control: Some(crate::bundle::CommittedControl {
                kind: BranchKind::Cond,
                taken: false,
                target: Addr::new(0x40_2000),
                next_pc: img.entry().offset_insts(4),
                is_fixup: false,
            }),
            mispredicted: true,
        });
        // The builder restarted at pc+4: commit a taken branch and check the
        // trained stream starts at the partial-stream point.
        eng.commit(&CommittedInst {
            pc: img.entry().offset_insts(4),
            control: Some(crate::bundle::CommittedControl {
                kind: BranchKind::Jump,
                taken: true,
                target: img.entry(),
                next_pc: img.entry(),
                is_fixup: false,
            }),
            mispredicted: false,
        });
        let p = eng.pred.predict(img.entry().offset_insts(4)).expect("partial stream trained");
        assert_eq!(p.len, 1);
        assert_eq!(p.kind, Some(BranchKind::Jump));
    }
}
