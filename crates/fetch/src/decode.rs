//! Decoded-line cache: host-side memoization of the per-instruction
//! decode work in the fetch inner loop.
//!
//! Every delivered instruction used to pay an [`CodeImage::inst_at`]
//! lookup (alignment + bounds checks) plus control-attribute extraction.
//! On the *correct* path that work is done once per dynamic instruction,
//! but on wrong paths it is redone from scratch after **every** squash:
//! the recovery point re-fetches the same lines, and at large ROBs (deep
//! speculation, long resolve latencies) the same bytes are re-decoded
//! many times per misprediction. The cache keys decoded instruction runs
//! by I-cache line, so a post-recovery re-fetch of a recently decoded
//! line serves from the cache.
//!
//! Correctness is structural: the [`CodeImage`] is immutable for the
//! lifetime of a simulation, so a cached decode can never go stale, and
//! the cached fields are exactly the ones the fetch loop read from
//! [`sfetch_cfg::ImageInst`] — simulated results are bit-identical with
//! the cache on or off (asserted by differential tests). Only host time
//! changes; the `redecode_ab` entry of `BENCH_4.json` records the delta.

use sfetch_cfg::CodeImage;
use sfetch_isa::{Addr, StaticInst};

/// One decoded instruction slot: the subset of [`sfetch_cfg::ImageInst`]
/// the fetch inner loops consume.
#[derive(Debug, Clone, Copy)]
pub struct DecodedInst {
    /// The static instruction.
    pub inst: StaticInst,
    /// Whether the slot is a control transfer.
    pub is_control: bool,
    /// Static branch target ([`Addr::NULL`] for non-branches and
    /// data-dependent targets), pre-flattened from the control attribute.
    pub target: Addr,
}

/// One cached line of decoded instructions.
#[derive(Debug, Clone)]
struct Entry {
    /// Line base address; [`Addr::NULL`] marks an invalid entry. (The
    /// code segment never starts at address zero — `CODE_BASE` — so NULL
    /// is unambiguous.)
    base: Addr,
    /// Address of the first decoded slot (`max(base, image base)`).
    first: Addr,
    /// Decoded slots from `first` to the end of line or image.
    insts: Vec<DecodedInst>,
}

/// Direct-mapped cache of decoded I-cache lines.
#[derive(Debug)]
pub struct DecodeCache {
    entries: Vec<Entry>,
    line_bytes: u64,
    hits: u64,
    misses: u64,
}

/// Cache entries: enough to cover the wrong-path working set between a
/// squash and the re-fetch of the recovery region (a handful of lines),
/// with headroom for the correct-path hot loop.
const ENTRIES: usize = 64;

impl DecodeCache {
    /// Builds an empty cache.
    pub fn new() -> Self {
        DecodeCache {
            entries: vec![
                Entry { base: Addr::NULL, first: Addr::NULL, insts: Vec::new() };
                ENTRIES
            ],
            line_bytes: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Host-side effectiveness counters `(hits, misses)`. Deliberately
    /// **not** part of [`crate::FetchEngineStats`]: simulated statistics
    /// must stay bit-identical with the cache on or off.
    pub fn counters(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// The decoded run starting at `start`, up to `k` instructions, all
    /// within the I-cache line containing `start` (the caller's fetch
    /// group never crosses a line). The returned slice is shorter than
    /// `k` when the image ends mid-run, and empty when `start` is outside
    /// the image — mirroring what per-slot [`CodeImage::inst_at`] lookups
    /// would have reported.
    pub fn run(&mut self, image: &CodeImage, start: Addr, k: u32, line_bytes: u64) -> &[DecodedInst] {
        if self.line_bytes != line_bytes {
            // Line geometry changed (only ever once, at first use): reset.
            self.line_bytes = line_bytes;
            for e in &mut self.entries {
                e.base = Addr::NULL;
            }
        }
        let base = start.line_base(line_bytes);
        let idx = (start.line_index(line_bytes) as usize) % ENTRIES;
        if self.entries[idx].base != base {
            self.misses += 1;
            Self::fill(&mut self.entries[idx], image, base, line_bytes);
        } else {
            self.hits += 1;
        }
        let e = &self.entries[idx];
        if start < e.first || !start.is_inst_aligned() {
            return &[];
        }
        let off = start.insts_since(e.first) as usize;
        let end = (off + k as usize).min(e.insts.len());
        if off >= end {
            return &[];
        }
        &e.insts[off..end]
    }

    /// Decodes one whole line (clipped to the image) into `e`.
    fn fill(e: &mut Entry, image: &CodeImage, base: Addr, line_bytes: u64) {
        e.base = base;
        e.first = base.max(image.base());
        e.insts.clear();
        let line_end = Addr::new(base.get() + line_bytes).min(image.end());
        let mut pc = e.first;
        while pc < line_end {
            let Some(ii) = image.inst_at(pc) else { break };
            e.insts.push(DecodedInst {
                inst: ii.inst,
                is_control: ii.control.is_some(),
                target: ii.control.and_then(|a| a.target).unwrap_or(Addr::NULL),
            });
            pc = pc.next_inst();
        }
    }
}

impl Default for DecodeCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfetch_cfg::builder::CfgBuilder;
    use sfetch_cfg::{layout, CondBehavior, TripCount};

    fn image() -> CodeImage {
        let mut bld = CfgBuilder::new();
        let f = bld.add_func("main");
        let body = bld.add_block(f, 40);
        let exit = bld.add_block(f, 1);
        bld.set_cond(body, body, exit, CondBehavior::Loop { trip: TripCount::Fixed(1 << 20) });
        bld.set_return(exit);
        let cfg = bld.finish().expect("valid");
        let lay = layout::natural(&cfg);
        CodeImage::build(&cfg, &lay)
    }

    #[test]
    fn cached_runs_match_image_lookups() {
        let img = image();
        let mut dc = DecodeCache::new();
        let lb = 128u64;
        for round in 0..3 {
            for slot in 0..img.len_insts() {
                let pc = img.base().offset_insts(slot as u64);
                let k = (pc.insts_to_line_end(lb) as u32).clamp(1, 8);
                let run = dc.run(&img, pc, k, lb);
                for (i, di) in run.iter().enumerate() {
                    let ii = img.inst_at(pc.offset_insts(i as u64)).expect("in image");
                    assert_eq!(di.inst, ii.inst, "round {round}");
                    assert_eq!(di.is_control, ii.control.is_some());
                    assert_eq!(di.target, ii.control.and_then(|a| a.target).unwrap_or(Addr::NULL));
                }
                // The run is exactly as long as the in-image span.
                let expect = (0..k as u64)
                    .take_while(|&i| img.inst_at(pc.offset_insts(i)).is_some())
                    .count();
                assert_eq!(run.len(), expect);
            }
        }
        let (hits, misses) = dc.counters();
        assert!(hits > misses * 10, "second/third rounds must hit ({hits} hits, {misses} misses)");
    }

    #[test]
    fn off_image_and_end_clipping() {
        let img = image();
        let mut dc = DecodeCache::new();
        let lb = 64u64;
        assert!(dc.run(&img, Addr::new(0x1000), 8, lb).is_empty(), "below image");
        assert!(dc.run(&img, img.end(), 8, lb).is_empty(), "at image end");
        // A run straddling the image end is clipped, not dropped.
        let last = img.base().offset_insts(img.len_insts() as u64 - 1);
        let k = (last.insts_to_line_end(lb) as u32).max(2);
        let run = dc.run(&img, last, k, lb);
        assert_eq!(run.len(), 1);
    }
}
