//! The engine-side I-cache port: one demand-fetch path shared by every
//! front-end, plus the prefetch probe issue stage.
//!
//! With no prefetch configuration the port reproduces the legacy blocking
//! I-cache protocol **exactly** — the same `inst_fetch` calls in the same
//! order with the same stall arithmetic — so the `PrefetchKind::None`
//! configuration stays bit-identical to the pre-prefetch simulator. With
//! the miss pipeline enabled, demand misses wait on their MSHR fill while
//! the engine's prediction stage and the prefetcher keep running.

use sfetch_isa::Addr;
use sfetch_mem::{InstDemand, MemoryHierarchy};
use sfetch_prefetch::{Lookahead, PrefetchConfig, Prefetcher};

use crate::engine::FetchEngineStats;

/// Why the fetch port delivered nothing this cycle — the per-cycle stall
/// probe behind [`crate::FetchEngine::stall_probe`], consumed by the
/// processor's top-down cycle classifier. Reset at
/// [`IcachePort::begin_cycle`] and set by whichever gate fired, so it
/// always describes the *current* cycle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum StallCause {
    /// No port-side stall (delivered, or nothing was demanded).
    #[default]
    None,
    /// The one-cycle post-redirect restart bubble.
    Redirect,
    /// Demand miss served by the L2.
    L2,
    /// Demand miss served by memory.
    Mem,
    /// Demand miss found no free MSHR (non-blocking miss pipeline).
    Mshr,
}

/// The I-cache access port of a fetch engine.
#[derive(Debug)]
pub struct IcachePort {
    prefetcher: Option<Box<dyn Prefetcher>>,
    degree: usize,
    stall_until: u64,
    /// Serving level of the in-progress blocking-mode miss stall:
    /// `Some(from_mem)` while stalled on a demand miss, `None` during
    /// redirect bubbles — so the decomposed stall buckets count the
    /// cycles actually spent stalled (a redirect cuts a stall short).
    stall_from_mem: Option<bool>,
    /// Why the port blocked this cycle (reset each [`IcachePort::begin_cycle`]).
    last_stall: StallCause,
    probe_buf: Vec<Addr>,
}

impl IcachePort {
    /// The legacy blocking port (no prefetcher, no miss pipeline use).
    pub fn blocking() -> Self {
        IcachePort {
            prefetcher: None,
            degree: 0,
            stall_until: 0,
            stall_from_mem: None,
            last_stall: StallCause::None,
            probe_buf: Vec::new(),
        }
    }

    /// Builds the port for a prefetch configuration (validated).
    pub fn from_config(cfg: &PrefetchConfig) -> Self {
        cfg.validate();
        IcachePort {
            prefetcher: cfg.kind.build(),
            degree: cfg.degree,
            stall_until: 0,
            stall_from_mem: None,
            last_stall: StallCause::None,
            probe_buf: Vec::with_capacity(cfg.degree.max(1)),
        }
    }

    /// Whether a prefetch policy is attached.
    pub fn has_prefetcher(&self) -> bool {
        self.prefetcher.is_some()
    }

    /// Per-cycle upkeep: completes due MSHR fills (no-op when the memory
    /// hierarchy runs the blocking model) and resets the stall probe.
    /// Call first in the engine cycle.
    pub fn begin_cycle(&mut self, now: u64, mem: &mut MemoryHierarchy) {
        self.last_stall = StallCause::None;
        mem.inst_tick(now);
    }

    /// Why the port blocked during the current cycle ([`StallCause::None`]
    /// if it didn't). Valid after [`IcachePort::begin_cycle`].
    pub fn last_stall(&self) -> StallCause {
        self.last_stall
    }

    /// The engine-wide stall gate: redirect bubbles, and in blocking mode
    /// the remainder of a miss stall. Counts a stall cycle when held.
    pub fn stalled(&mut self, now: u64, stats: &mut FetchEngineStats) -> bool {
        if now < self.stall_until {
            stats.icache_stall_cycles += 1;
            match self.stall_from_mem {
                Some(true) => {
                    stats.stall_mem_cycles += 1;
                    self.last_stall = StallCause::Mem;
                }
                Some(false) => {
                    stats.stall_l2_cycles += 1;
                    self.last_stall = StallCause::L2;
                }
                None => self.last_stall = StallCause::Redirect, // redirect bubble
            }
            true
        } else {
            self.stall_from_mem = None;
            false
        }
    }

    /// One demand access for the line containing `addr`; returns whether
    /// its data is usable this cycle. On a blocking-mode miss the engine
    /// is stalled for the whole latency (the legacy protocol); on a
    /// pipelined miss only this demand waits — the caller should return
    /// from its cycle but keep its prediction stage and prefetcher
    /// running on subsequent cycles.
    pub fn demand(
        &mut self,
        now: u64,
        mem: &mut MemoryHierarchy,
        addr: Addr,
        stats: &mut FetchEngineStats,
    ) -> bool {
        if !mem.inst_pipeline_enabled() {
            let lat = mem.inst_fetch(addr);
            if lat > 1 {
                self.stall_until = now + u64::from(lat) - 1;
                stats.icache_stall_cycles += 1;
                let cfg = mem.config();
                let from_mem = lat > cfg.l1_latency + cfg.l2_latency;
                self.stall_from_mem = Some(from_mem);
                if from_mem {
                    stats.stall_mem_cycles += 1;
                    self.last_stall = StallCause::Mem;
                } else {
                    stats.stall_l2_cycles += 1;
                    self.last_stall = StallCause::L2;
                }
                return false;
            }
            return true;
        }
        let line = addr.line_index(mem.l1i_line_bytes());
        match mem.inst_demand(now, addr) {
            InstDemand::Ready => {
                if let Some(p) = self.prefetcher.as_mut() {
                    p.observe_demand(line, true);
                }
                true
            }
            InstDemand::Wait { from_mem, allocated, .. } => {
                stats.icache_stall_cycles += 1;
                if from_mem {
                    stats.stall_mem_cycles += 1;
                    self.last_stall = StallCause::Mem;
                } else {
                    stats.stall_l2_cycles += 1;
                    self.last_stall = StallCause::L2;
                }
                if allocated {
                    if let Some(p) = self.prefetcher.as_mut() {
                        p.observe_demand(line, false);
                    }
                }
                false
            }
            InstDemand::Blocked => {
                stats.icache_stall_cycles += 1;
                stats.stall_mshr_cycles += 1;
                self.last_stall = StallCause::Mshr;
                false
            }
        }
    }

    /// Runs the prefetcher over the engine's lookahead and issues up to
    /// the configured per-cycle probe budget to the memory system.
    /// Probes that find no free MSHR are reported back so the policy can
    /// re-emit them later instead of considering them covered.
    pub fn drive(&mut self, now: u64, mem: &mut MemoryHierarchy, ctx: &Lookahead<'_>) {
        let Some(p) = self.prefetcher.as_mut() else { return };
        self.probe_buf.clear();
        p.probes(ctx, self.degree, &mut self.probe_buf);
        let line_bytes = mem.l1i_line_bytes();
        for i in 0..self.probe_buf.len().min(self.degree) {
            let addr = self.probe_buf[i];
            if mem.inst_prefetch(now, addr) == sfetch_mem::InstPrefetch::NoMshr {
                p.unissued(addr.line_index(line_bytes));
            }
        }
    }

    /// Redirect bubble: fetch resumes next cycle (clears any blocking-mode
    /// miss stall, as the legacy engines did).
    pub fn redirect(&mut self, now: u64) {
        self.stall_until = now + 1;
        self.stall_from_mem = None;
    }

    /// Storage cost of the attached prefetcher's tables in bits.
    pub fn storage_bits(&self) -> u64 {
        self.prefetcher.as_ref().map_or(0, |p| p.storage_bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfetch_mem::MemoryConfig;
    use sfetch_prefetch::PrefetchKind;

    #[test]
    fn blocking_mode_reproduces_legacy_stall_protocol() {
        let mut mem = MemoryHierarchy::new(MemoryConfig::table2(8));
        let mut port = IcachePort::blocking();
        let mut stats = FetchEngineStats::default();
        let a = Addr::new(0x40_0000);
        // Cold miss at cycle 0: stalled through cycle 114, ready at 115.
        assert!(!port.demand(0, &mut mem, a, &mut stats));
        for t in 1..115 {
            assert!(port.stalled(t, &mut stats), "cycle {t}");
        }
        assert!(!port.stalled(115, &mut stats));
        assert!(port.demand(115, &mut mem, a, &mut stats));
        assert_eq!(stats.icache_stall_cycles, 115);
        assert_eq!(stats.stall_mem_cycles, 115);
        assert_eq!(stats.stall_l2_cycles, 0);
    }

    #[test]
    fn pipelined_demand_waits_without_engine_stall() {
        let mut mem = MemoryHierarchy::new(MemoryConfig::table2(8));
        mem.enable_inst_pipeline(4);
        let mut port = IcachePort::from_config(&PrefetchConfig::enabled(PrefetchKind::NextLine));
        let mut stats = FetchEngineStats::default();
        let a = Addr::new(0x40_0000);
        port.begin_cycle(0, &mut mem);
        assert!(!port.demand(0, &mut mem, a, &mut stats));
        // The engine-wide gate is NOT held: prediction/prefetch continue.
        assert!(!port.stalled(1, &mut stats));
        for t in 1..115 {
            port.begin_cycle(t, &mut mem);
            assert!(!port.demand(t, &mut mem, a, &mut stats));
        }
        port.begin_cycle(115, &mut mem);
        assert!(port.demand(115, &mut mem, a, &mut stats));
        assert_eq!(stats.icache_stall_cycles, 115, "same wait length as blocking");
        assert_eq!(stats.stall_mem_cycles, 115);
    }

    #[test]
    fn drive_issues_probes_within_budget() {
        let mut mem = MemoryHierarchy::new(MemoryConfig::table2(8));
        mem.enable_inst_pipeline(8);
        let mut port = IcachePort::from_config(&PrefetchConfig::enabled(PrefetchKind::NextLine));
        let ctx = Lookahead {
            demand: Some(Addr::new(0x1000)),
            queued: &[],
            predicted_next: None,
            line_bytes: mem.l1i_line_bytes(),
        };
        port.begin_cycle(0, &mut mem);
        port.drive(0, &mut mem, &ctx);
        assert_eq!(mem.prefetch_stats().issued, 2, "next-line degree 2");
        assert_eq!(mem.inst_fills_in_flight(), 2);
    }
}
