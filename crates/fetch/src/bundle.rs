//! Types flowing between the fetch engines and the processor.

use sfetch_isa::{Addr, BranchKind, StaticInst};
use sfetch_predictors::{PathSnapshot, RasSnapshot};

/// Speculative-state checkpoint carried by each fetched instruction.
///
/// Restoring a checkpoint repairs every speculative predictor structure the
/// engine owns: the global history register, the path-history register of
/// the stream/trace predictor, and the RAS top-of-stack + index (the
/// paper's shadow-copy repair, §3.2). All fields are O(1) copies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Checkpoint {
    /// Speculative global (direction) history.
    pub ghist: u64,
    /// Speculative path-history register.
    pub path: PathSnapshot,
    /// RAS index + top-of-stack shadow.
    pub ras: RasSnapshot,
}

/// A branch prediction attached to a fetched branch instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchPrediction {
    /// Predicted direction (always `true` for unconditional kinds the
    /// engine recognized; `false` for *implicit not-taken* embedded
    /// branches).
    pub taken: bool,
    /// Predicted target when taken ([`Addr::NULL`] when the engine had no
    /// target, e.g. an unidentified branch).
    pub target: Addr,
}

/// One instruction delivered by a fetch engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FetchedInst {
    /// Instruction address.
    pub pc: Addr,
    /// The static instruction (decoded from the image).
    pub inst: StaticInst,
    /// The prediction, for control-transfer instructions.
    pub pred: Option<BranchPrediction>,
    /// Speculative-state checkpoint to restore if recovery is anchored at
    /// this instruction.
    pub cp: Checkpoint,
}

/// Resolved outcome handed to [`crate::FetchEngine::redirect`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolvedBranch {
    /// Branch address (or the address of the mismatching instruction for a
    /// non-branch misfetch).
    pub pc: Addr,
    /// Branch kind (`None` for a non-branch misfetch recovery).
    pub kind: Option<BranchKind>,
    /// Actual direction.
    pub taken: bool,
    /// Actual target (the redirect destination when taken).
    pub target: Addr,
}

/// Control outcome of a committed instruction (the engine-facing subset of
/// the executor's record).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommittedControl {
    /// Branch kind.
    pub kind: BranchKind,
    /// Whether it was taken.
    pub taken: bool,
    /// Target address (static target for untaken conditionals).
    pub target: Addr,
    /// Architecturally next pc.
    pub next_pc: Addr,
    /// Layout fix-up jump?
    pub is_fixup: bool,
}

/// One committed instruction, as reported to the engines for training.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommittedInst {
    /// Instruction address.
    pub pc: Addr,
    /// Control outcome, for branches.
    pub control: Option<CommittedControl>,
    /// Whether the front-end was redirected at this instruction (its
    /// prediction — explicit or implicit — was wrong). Trains hysteresis
    /// and gates second-level insertion in the cascaded predictors.
    pub mispredicted: bool,
}

impl CommittedInst {
    /// Architecturally next pc.
    pub fn next_pc(&self) -> Addr {
        match self.control {
            Some(c) => c.next_pc,
            None => self.pc.next_inst(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn committed_next_pc() {
        let plain = CommittedInst { pc: Addr::new(0x100), control: None, mispredicted: false };
        assert_eq!(plain.next_pc(), Addr::new(0x104));
        let br = CommittedInst {
            pc: Addr::new(0x100),
            control: Some(CommittedControl {
                kind: BranchKind::Jump,
                taken: true,
                target: Addr::new(0x900),
                next_pc: Addr::new(0x900),
                is_fixup: false,
            }),
            mispredicted: false,
        };
        assert_eq!(br.next_pc(), Addr::new(0x900));
    }

    #[test]
    fn checkpoint_is_small_and_copy() {
        // The whole point: per-instruction checkpoints must be trivially
        // copyable words, not heap structures.
        assert!(std::mem::size_of::<Checkpoint>() <= 64);
        let cp = Checkpoint::default();
        let cp2 = cp;
        assert_eq!(cp, cp2);
    }
}
