//! The fetch target queue and the fetch-request update mechanism.
//!
//! The FTQ (Reinman, Austin, Calder; adopted in §3.3) decouples the
//! prediction pipeline from the I-cache access pipeline. With streams its
//! usefulness grows: the average request describes more than a cache line's
//! worth of instructions, so instead of splitting a request, the head entry
//! is **updated in place** each cycle — the start address advances and the
//! remaining length shrinks (Fig. 6) — until the stream is satisfied.

use sfetch_isa::{Addr, BranchKind};

use crate::bundle::Checkpoint;

/// One fetch request: a (possibly multi-cycle) run of sequential
/// instructions plus the terminator prediction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FetchRequest {
    /// Original start address of the unit (stream / fetch block).
    pub start: Addr,
    /// Next instruction address to fetch (advanced by the update
    /// mechanism).
    pub cur: Addr,
    /// Instructions remaining, including the terminator.
    pub remaining: u32,
    /// Predicted terminator kind. `None` means no terminating taken branch
    /// is predicted (sequential fallback or a cap-split stream): every
    /// branch inside is implicitly not-taken.
    pub term: Option<BranchKind>,
    /// Predicted next fetch address after the unit (the terminator's
    /// target, RAS-resolved for returns; `start + len` for sequential).
    pub next: Addr,
    /// Whether a predictor produced this request (vs. sequential fallback).
    pub predicted: bool,
    /// Checkpoint for embedded (implicitly not-taken) branches: state
    /// *before* the terminator's RAS action.
    pub cp_embedded: Checkpoint,
    /// Checkpoint for the terminating branch: state *after* its RAS action,
    /// so recovery at the terminator itself preserves its architectural
    /// push/pop.
    pub cp_term: Checkpoint,
}

impl FetchRequest {
    /// Total predicted length of the unit in instructions.
    pub fn len(&self) -> u32 {
        self.remaining + self.cur.insts_since(self.start) as u32
    }

    /// Whether no instructions remain.
    pub fn is_empty(&self) -> bool {
        self.remaining == 0
    }

    /// Address of the predicted terminating instruction.
    pub fn term_pc(&self) -> Addr {
        self.start.offset_insts(u64::from(self.len()) - 1)
    }

    /// Consumes `n` instructions: advances `cur`, shrinks `remaining`
    /// (Fig. 6's update mechanism).
    ///
    /// # Panics
    ///
    /// Panics if `n > remaining` (a fetch-engine bug).
    pub fn consume(&mut self, n: u32) {
        assert!(n <= self.remaining, "over-consuming fetch request");
        self.cur = self.cur.offset_insts(u64::from(n));
        self.remaining -= n;
    }
}

/// A bounded queue of fetch requests.
#[derive(Debug, Clone, Default)]
pub struct Ftq {
    entries: Vec<FetchRequest>,
    cap: usize,
}

impl Ftq {
    /// Creates an FTQ with `cap` entries (Table 2 uses 4).
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "FTQ needs at least one entry");
        Ftq { entries: Vec::with_capacity(cap), cap }
    }

    /// Whether another request fits.
    pub fn has_space(&self) -> bool {
        self.entries.len() < self.cap
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of queued requests.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Enqueues a request.
    ///
    /// # Panics
    ///
    /// Panics if the queue is full (callers must check
    /// [`Ftq::has_space`]).
    pub fn push(&mut self, req: FetchRequest) {
        assert!(self.has_space(), "FTQ overflow");
        self.entries.push(req);
    }

    /// The head request, if any.
    pub fn head(&mut self) -> Option<&mut FetchRequest> {
        self.entries.first_mut()
    }

    /// The head request's current fetch address, if any (the address the
    /// I-cache stage demands next).
    pub fn head_addr(&self) -> Option<Addr> {
        self.entries.first().map(|r| r.cur)
    }

    /// Iterates the queued requests, head first (prefetch lookahead).
    pub fn iter(&self) -> impl Iterator<Item = &FetchRequest> {
        self.entries.iter()
    }

    /// Pops the (satisfied) head request.
    pub fn pop(&mut self) -> Option<FetchRequest> {
        if self.entries.is_empty() {
            None
        } else {
            Some(self.entries.remove(0))
        }
    }

    /// Clears all requests (redirect).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(start: u64, len: u32) -> FetchRequest {
        FetchRequest {
            start: Addr::new(start),
            cur: Addr::new(start),
            remaining: len,
            term: Some(BranchKind::Cond),
            next: Addr::new(0x9000),
            predicted: true,
            cp_embedded: Checkpoint::default(),
            cp_term: Checkpoint::default(),
        }
    }

    #[test]
    fn update_mechanism_advances_in_place() {
        let mut r = req(0x1000, 20);
        assert_eq!(r.len(), 20);
        assert_eq!(r.term_pc(), Addr::new(0x1000 + 19 * 4));
        r.consume(8);
        assert_eq!(r.cur, Addr::new(0x1000 + 8 * 4));
        assert_eq!(r.remaining, 12);
        assert_eq!(r.len(), 20, "unit length is invariant");
        assert_eq!(r.term_pc(), Addr::new(0x1000 + 19 * 4));
        r.consume(12);
        assert!(r.is_empty());
    }

    #[test]
    #[should_panic(expected = "over-consuming")]
    fn over_consume_panics() {
        let mut r = req(0x1000, 4);
        r.consume(5);
    }

    #[test]
    fn queue_respects_capacity() {
        let mut q = Ftq::new(2);
        assert!(q.is_empty());
        q.push(req(0x1000, 4));
        q.push(req(0x2000, 4));
        assert!(!q.has_space());
        assert_eq!(q.len(), 2);
    }

    #[test]
    #[should_panic(expected = "FTQ overflow")]
    fn overflow_panics() {
        let mut q = Ftq::new(1);
        q.push(req(0x1000, 4));
        q.push(req(0x2000, 4));
    }

    #[test]
    fn fifo_order_and_clear() {
        let mut q = Ftq::new(4);
        q.push(req(0x1000, 4));
        q.push(req(0x2000, 4));
        assert_eq!(q.head().expect("head").start, Addr::new(0x1000));
        let popped = q.pop().expect("pop");
        assert_eq!(popped.start, Addr::new(0x1000));
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }
}
