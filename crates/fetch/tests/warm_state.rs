//! Warm-state banking roundtrips: warm each engine through its
//! functional-warming path, capture the commit-side state, restore it into
//! a freshly built engine, and require byte-identical re-captures. This is
//! the foundation the sampled-simulation store builds on — a banked warm
//! state must be indistinguishable from having run the warming walk live.

use sfetch_fetch::{CommittedControl, CommittedInst, EngineKind};
use sfetch_isa::{Addr, BranchKind};

const ENTRY: Addr = Addr::new(0x1000);

fn plain(pc: u64) -> CommittedInst {
    CommittedInst { pc: Addr::new(pc), control: None, mispredicted: false }
}

fn branch(pc: u64, kind: BranchKind, taken: bool, target: u64, next_pc: u64) -> CommittedInst {
    CommittedInst {
        pc: Addr::new(pc),
        control: Some(CommittedControl {
            kind,
            taken,
            target: Addr::new(target),
            next_pc: Addr::new(next_pc),
            is_fixup: false,
        }),
        mispredicted: false,
    }
}

/// A commit stream exercising every warm structure: calls/returns (RAS,
/// trace terminators), an alternating conditional (direction bits, split
/// FTB blocks), a direct jump (BTB/FTB/interior-taken traces), and a
/// taken back-edge.
fn commit_stream(iters: usize) -> Vec<CommittedInst> {
    let mut out = Vec::new();
    for i in 0..iters {
        out.push(plain(0x1000));
        out.push(plain(0x1004));
        out.push(plain(0x1008));
        out.push(branch(0x100c, BranchKind::Call, true, 0x2000, 0x2000));
        out.push(plain(0x2000));
        out.push(branch(0x2004, BranchKind::Return, true, 0x1010, 0x1010));
        out.push(plain(0x1010));
        let zig = i % 2 == 0;
        if zig {
            out.push(branch(0x1014, BranchKind::Cond, true, 0x1020, 0x1020));
        } else {
            out.push(branch(0x1014, BranchKind::Cond, false, 0x1020, 0x1018));
            out.push(plain(0x1018));
            out.push(branch(0x101c, BranchKind::Jump, true, 0x1020, 0x1020));
        }
        out.push(plain(0x1020));
        out.push(plain(0x1024));
        out.push(branch(0x1028, BranchKind::Cond, true, 0x1000, 0x1000));
    }
    out
}

fn warmed(kind: EngineKind, iters: usize) -> Box<dyn sfetch_fetch::FetchEngine> {
    let mut eng = kind.build(8, ENTRY);
    let stream = commit_stream(iters);
    for chunk in stream.chunks(16) {
        eng.warm_block(chunk);
    }
    eng
}

#[test]
fn all_engines_support_warm_state() {
    for kind in EngineKind::ALL {
        let eng = kind.build(8, ENTRY);
        assert!(eng.warm_state().is_some(), "{kind} must support warm-state banking");
    }
}

#[test]
fn roundtrip_is_byte_identical() {
    for kind in EngineKind::ALL {
        let warm = warmed(kind, 200);
        let bytes = warm.warm_state().expect("warm state");
        let mut fresh = kind.build(8, ENTRY);
        assert_ne!(
            fresh.warm_state().expect("warm state"),
            bytes,
            "{kind}: warming must actually change the captured state"
        );
        fresh.load_warm_state(&bytes).unwrap_or_else(|e| panic!("{kind}: load failed: {e}"));
        assert_eq!(
            fresh.warm_state().expect("warm state"),
            bytes,
            "{kind}: restored engine must re-capture identical bytes"
        );
        assert_eq!(fresh.stats(), warm.stats(), "{kind}: statistics restored");
    }
}

#[test]
fn capture_is_deterministic_across_identical_warmups() {
    // Guards against nondeterministic iteration order (hash sets) leaking
    // into the wire bytes: two engines warmed identically must serialize
    // identically.
    for kind in EngineKind::ALL {
        let a = warmed(kind, 120).warm_state().expect("warm state");
        let b = warmed(kind, 120).warm_state().expect("warm state");
        assert_eq!(a, b, "{kind}: identical warmups must capture identical bytes");
    }
}

#[test]
fn truncated_and_trailing_bytes_are_rejected() {
    for kind in EngineKind::ALL {
        let bytes = warmed(kind, 50).warm_state().expect("warm state");
        let mut fresh = kind.build(8, ENTRY);
        assert!(
            fresh.load_warm_state(&bytes[..bytes.len() - 1]).is_err(),
            "{kind}: truncated payload must be rejected"
        );
        let mut extended = bytes.clone();
        extended.push(0);
        let mut fresh = kind.build(8, ENTRY);
        assert!(
            fresh.load_warm_state(&extended).is_err(),
            "{kind}: trailing garbage must be rejected"
        );
    }
}

#[test]
fn version_mismatch_is_rejected() {
    for kind in EngineKind::ALL {
        let mut bytes = warmed(kind, 50).warm_state().expect("warm state");
        bytes[0] ^= 0xff; // first u32 is the warm-format version
        let mut fresh = kind.build(8, ENTRY);
        let err = fresh.load_warm_state(&bytes).expect_err("version mismatch must fail");
        assert!(err.contains("version"), "{kind}: unexpected error: {err}");
    }
}

#[test]
fn cross_engine_payloads_are_rejected() {
    let stream_bytes = warmed(EngineKind::Stream, 50).warm_state().expect("warm state");
    for kind in [EngineKind::Ev8, EngineKind::Ftb, EngineKind::TraceCache] {
        let mut eng = kind.build(8, ENTRY);
        assert!(
            eng.load_warm_state(&stream_bytes).is_err(),
            "{kind}: stream-engine payload must not load"
        );
    }
}
