//! The flattened per-block control side-table.
//!
//! The architectural executor resolves every dynamic control transfer by
//! asking "what does the owner block's terminator do?". Matching on
//! [`Terminator`] per instruction forces a heap clone of
//! the behaviour payloads (`Pattern` vectors, weighted callee/target lists,
//! cyclic selection sequences) on *every dynamic branch instance* — the
//! dominant allocation source in the simulator's hot loop.
//!
//! [`ControlTable`] is built once per [`CodeImage`](crate::CodeImage): one
//! compact [`CondCtl`]/[`IndirectCtl`] record per block, with all
//! variable-length payloads interned into shared flat arrays and indirect
//! targets pre-resolved to concrete image addresses. The executor then
//! resolves a dynamic branch with two array indexations and zero
//! allocations, and indirect transfers skip the
//! `FuncId -> entry block -> address` double lookup entirely.

use sfetch_isa::Addr;

use crate::behavior::{CondBehavior, IndirectSelect, TripCount};
use crate::graph::{BlockId, Cfg, Terminator};

/// Interned conditional-branch behaviour: a `Copy` mirror of
/// [`CondBehavior`] with the pattern bits stored out-of-line in the table
/// and probabilities pre-clamped to `[0, 1]`, so evaluation needs no
/// per-instance normalization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CondCtl {
    /// Independent Bernoulli draws.
    Bernoulli {
        /// Probability of following the logical taken edge (pre-clamped).
        p_taken: f64,
    },
    /// Cyclic pattern; the bits live at `[off, off + len)` of the table's
    /// pattern store (see [`ControlTable::pattern_bits`]).
    Pattern {
        /// Offset into the interned pattern store.
        off: u32,
        /// Pattern length (0 encodes an empty pattern).
        len: u32,
    },
    /// Loop back-edge with a trip-count distribution.
    Loop {
        /// Trip-count distribution.
        trip: TripCount,
    },
    /// History-correlated outcome.
    Correlated {
        /// Conditional instances back to look.
        dist: u8,
        /// Whether the correlated outcome is inverted.
        invert: bool,
        /// Probability of ignoring the correlation (pre-clamped).
        noise: f64,
    },
}

/// Interned indirect-transfer descriptor. Targets are image addresses (the
/// callee's entry block address for indirect calls), weights are pre-clamped
/// to `>= 1` and pre-summed so a weighted pick needs no per-step pass over
/// the list, and cyclic sequence entries are pre-reduced modulo the target
/// count so a cyclic pick is a plain double indexation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndirectCtl {
    targets_off: u32,
    targets_len: u32,
    /// Sum of the (clamped) target weights.
    pub total_weight: u64,
    cyclic_off: u32,
    cyclic_len: u32,
}

/// Per-block control record: everything the block's terminator needs at
/// execution time, stored inline so a dynamic branch resolves with a single
/// array lookup. Direct jumps, calls and returns are fully described by the
/// image's `ControlAttr` and need no record.
#[derive(Debug, Clone, Copy, PartialEq)]
enum BlockCtl {
    None,
    Cond(CondCtl),
    Indirect(IndirectCtl),
}

/// The side-table: one record per CFG block, payloads interned flat.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlTable {
    blocks: Vec<BlockCtl>,
    patterns: Vec<bool>,
    targets: Vec<(Addr, u64)>,
    cyclic: Vec<u16>,
}

impl ControlTable {
    /// Builds the table for `cfg` whose blocks were placed at `block_addr`
    /// (indexed by [`BlockId::index`]).
    ///
    /// # Panics
    ///
    /// Panics if `block_addr` does not cover every block.
    pub fn build(cfg: &Cfg, block_addr: &[Addr]) -> Self {
        assert_eq!(block_addr.len(), cfg.num_blocks(), "address table must cover every block");
        let mut t = ControlTable {
            blocks: Vec::with_capacity(cfg.num_blocks()),
            patterns: Vec::new(),
            targets: Vec::new(),
            cyclic: Vec::new(),
        };
        for blk in cfg.blocks() {
            let ctl = match blk.terminator() {
                Terminator::Cond { behavior, .. } => BlockCtl::Cond(t.intern_cond(behavior)),
                Terminator::IndirectCall { callees, select, .. } => {
                    let resolved = callees
                        .iter()
                        .map(|&(f, w)| (block_addr[cfg.func(f).entry().index()], w));
                    BlockCtl::Indirect(t.intern_indirect(resolved, select))
                }
                Terminator::IndirectJump { targets, select } => {
                    let resolved = targets.iter().map(|&(b, w)| (block_addr[b.index()], w));
                    BlockCtl::Indirect(t.intern_indirect(resolved, select))
                }
                Terminator::FallThrough { .. }
                | Terminator::Jump { .. }
                | Terminator::Call { .. }
                | Terminator::Return => BlockCtl::None,
            };
            t.blocks.push(ctl);
        }
        t
    }

    fn intern_cond(&mut self, beh: &CondBehavior) -> CondCtl {
        match beh {
            CondBehavior::Bernoulli { p_taken } => {
                CondCtl::Bernoulli { p_taken: p_taken.clamp(0.0, 1.0) }
            }
            CondBehavior::Pattern(bits) => {
                let off = self.patterns.len() as u32;
                self.patterns.extend_from_slice(bits);
                CondCtl::Pattern { off, len: bits.len() as u32 }
            }
            CondBehavior::Loop { trip } => CondCtl::Loop { trip: *trip },
            CondBehavior::Correlated { dist, invert, noise } => {
                CondCtl::Correlated { dist: *dist, invert: *invert, noise: noise.clamp(0.0, 1.0) }
            }
        }
    }

    fn intern_indirect(
        &mut self,
        resolved: impl Iterator<Item = (Addr, u32)>,
        select: &IndirectSelect,
    ) -> IndirectCtl {
        let targets_off = self.targets.len() as u32;
        let mut total_weight = 0u64;
        for (addr, w) in resolved {
            let w = u64::from(w.max(1));
            total_weight += w;
            self.targets.push((addr, w));
        }
        let targets_len = self.targets.len() as u32 - targets_off;
        let cyclic_off = self.cyclic.len() as u32;
        if let IndirectSelect::Cyclic(seq) = select {
            // Pre-reduce each entry modulo the target count: the executor's
            // cyclic pick becomes a plain double indexation.
            t_extend_reduced(&mut self.cyclic, seq, targets_len);
        }
        let cyclic_len = self.cyclic.len() as u32 - cyclic_off;
        IndirectCtl { targets_off, targets_len, total_weight, cyclic_off, cyclic_len }
    }

    /// Number of blocks covered (equals the CFG's block count).
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The interned conditional record of `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b`'s terminator is not a conditional branch — the same
    /// inconsistency the executor previously reported when an image branch
    /// mapped to the wrong terminator.
    #[inline]
    pub fn cond_of(&self, b: BlockId) -> CondCtl {
        match self.blocks[b.index()] {
            BlockCtl::Cond(c) => c,
            _ => panic!("block {b} has no conditional control record"),
        }
    }

    /// The interned indirect record of `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b`'s terminator is not an indirect call/jump.
    #[inline]
    pub fn indirect_of(&self, b: BlockId) -> IndirectCtl {
        match self.blocks[b.index()] {
            BlockCtl::Indirect(i) => i,
            _ => panic!("block {b} has no indirect control record"),
        }
    }

    /// The interned pattern bits of a [`CondCtl::Pattern`].
    #[inline]
    pub fn pattern_bits(&self, off: u32, len: u32) -> &[bool] {
        &self.patterns[off as usize..(off + len) as usize]
    }

    /// The resolved `(address, weight)` targets of an indirect record.
    #[inline]
    pub fn targets_of(&self, ic: IndirectCtl) -> &[(Addr, u64)] {
        &self.targets[ic.targets_off as usize..(ic.targets_off + ic.targets_len) as usize]
    }

    /// The cyclic selection sequence of an indirect record (empty for
    /// weighted selection), entries pre-reduced to valid target slots.
    #[inline]
    pub fn cycle_of(&self, ic: IndirectCtl) -> &[u16] {
        &self.cyclic[ic.cyclic_off as usize..(ic.cyclic_off + ic.cyclic_len) as usize]
    }
}

/// Appends `seq` with each entry reduced modulo `n_targets` (slots are
/// static, so the reduction the executor used to do per instance happens
/// once here).
fn t_extend_reduced(cyclic: &mut Vec<u16>, seq: &[u16], n_targets: u32) {
    let n = n_targets.max(1) as u16;
    cyclic.extend(seq.iter().map(|&s| s % n));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CfgBuilder;
    use crate::layout::natural;
    use crate::CodeImage;

    fn addrs(cfg: &Cfg) -> Vec<Addr> {
        let img = CodeImage::build(cfg, &natural(cfg));
        cfg.blocks().iter().map(|b| img.block_addr(b.id())).collect()
    }

    #[test]
    fn cond_records_mirror_behaviors() {
        let mut bld = CfgBuilder::new();
        let f = bld.add_func("main");
        let a = bld.add_block(f, 1);
        let t = bld.add_block(f, 1);
        let n = bld.add_block(f, 1);
        bld.set_cond(a, t, n, CondBehavior::Pattern(vec![true, false, true]));
        bld.set_return(t);
        bld.set_return(n);
        let cfg = bld.finish().expect("valid");
        let table = ControlTable::build(&cfg, &addrs(&cfg));
        match table.cond_of(BlockId::from_index(0)) {
            CondCtl::Pattern { off, len } => {
                assert_eq!(table.pattern_bits(off, len), &[true, false, true]);
            }
            c => panic!("expected pattern, got {c:?}"),
        }
    }

    #[test]
    fn indirect_targets_resolve_to_block_addresses() {
        let mut bld = CfgBuilder::new();
        let f = bld.add_func("main");
        let sw = bld.add_block(f, 1);
        let a = bld.add_block(f, 1);
        let b = bld.add_block(f, 2);
        bld.set_indirect_jump(sw, vec![(a, 3), (b, 0)], IndirectSelect::Cyclic(vec![0, 1, 1]));
        bld.set_return(a);
        bld.set_return(b);
        let cfg = bld.finish().expect("valid");
        let addr = addrs(&cfg);
        let table = ControlTable::build(&cfg, &addr);
        let ic = table.indirect_of(BlockId::from_index(0));
        let targets = table.targets_of(ic);
        assert_eq!(targets.len(), 2);
        assert_eq!(targets[0], (addr[1], 3), "weight kept");
        assert_eq!(targets[1], (addr[2], 1), "zero weight clamps to 1");
        assert_eq!(ic.total_weight, 4);
        assert_eq!(table.cycle_of(ic), &[0, 1, 1]);
    }

    #[test]
    fn plain_blocks_have_no_records() {
        let mut bld = CfgBuilder::new();
        let f = bld.add_func("main");
        let a = bld.add_block(f, 1);
        let b = bld.add_block(f, 1);
        bld.set_jump(a, b);
        bld.set_return(b);
        let cfg = bld.finish().expect("valid");
        let table = ControlTable::build(&cfg, &addrs(&cfg));
        assert_eq!(table.num_blocks(), 2);
        let r = std::panic::catch_unwind(|| table.cond_of(BlockId::from_index(0)));
        assert!(r.is_err(), "jump block must not expose a cond record");
    }

    #[test]
    fn generated_programs_cover_every_block_class() {
        use crate::gen::{GenParams, ProgramGenerator};
        let cfg = ProgramGenerator::new(GenParams::default_int(), 11).generate();
        let addr = addrs(&cfg);
        let table = ControlTable::build(&cfg, &addr);
        for blk in cfg.blocks() {
            match blk.terminator() {
                Terminator::Cond { behavior, .. } => {
                    let c = table.cond_of(blk.id());
                    // Spot-check the record mirrors the behaviour class.
                    match (behavior, c) {
                        (CondBehavior::Bernoulli { p_taken }, CondCtl::Bernoulli { p_taken: q }) => {
                            assert_eq!(*p_taken, q)
                        }
                        (CondBehavior::Pattern(p), CondCtl::Pattern { off, len }) => {
                            assert_eq!(table.pattern_bits(off, len), p.as_slice())
                        }
                        (CondBehavior::Loop { trip }, CondCtl::Loop { trip: t }) => {
                            assert_eq!(*trip, t)
                        }
                        (
                            CondBehavior::Correlated { dist, .. },
                            CondCtl::Correlated { dist: d, .. },
                        ) => assert_eq!(*dist, d),
                        (b, c) => panic!("class mismatch: {b:?} vs {c:?}"),
                    }
                }
                Terminator::IndirectJump { targets, .. } => {
                    let ic = table.indirect_of(blk.id());
                    let resolved = table.targets_of(ic);
                    assert_eq!(resolved.len(), targets.len());
                    for (&(got, _), &(want, _)) in resolved.iter().zip(targets) {
                        assert_eq!(got, addr[want.index()]);
                    }
                }
                Terminator::IndirectCall { callees, .. } => {
                    let ic = table.indirect_of(blk.id());
                    let resolved = table.targets_of(ic);
                    for (&(got, _), &(want, _)) in resolved.iter().zip(callees) {
                        assert_eq!(got, addr[cfg.func(want).entry().index()]);
                    }
                }
                _ => {}
            }
        }
    }
}
