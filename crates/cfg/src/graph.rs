//! The control-flow-graph program representation.

use std::fmt;

use sfetch_isa::StaticInst;

use crate::behavior::{CondBehavior, IndirectSelect};

/// Identifier of a basic block within a [`Cfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub(crate) u32);

impl BlockId {
    /// The raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a block id from a raw index (for tests and tooling).
    #[inline]
    pub const fn from_index(i: usize) -> Self {
        BlockId(i as u32)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// Identifier of a function within a [`Cfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(pub(crate) u32);

impl FuncId {
    /// The raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a function id from a raw index (for tests and tooling).
    #[inline]
    pub const fn from_index(i: usize) -> Self {
        FuncId(i as u32)
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// How a basic block transfers control when its body finishes.
///
/// Control-transfer *instructions* implied by a terminator (everything except
/// [`Terminator::FallThrough`]) occupy one instruction slot at the end of the
/// block; the [`crate::CodeImage`] materializes them.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// No branch: control continues into `next`. The layout pass inserts a
    /// fix-up jump if `next` cannot be placed adjacently.
    FallThrough {
        /// Sole successor.
        next: BlockId,
    },
    /// Conditional direct branch with a behaviour model deciding the
    /// *logical* direction each instance.
    Cond {
        /// Successor on the logical taken edge.
        taken: BlockId,
        /// Successor on the logical not-taken edge.
        not_taken: BlockId,
        /// The branch's behaviour model.
        behavior: CondBehavior,
    },
    /// Unconditional direct jump. Elided by the layout when `target` is
    /// placed immediately after this block.
    Jump {
        /// Sole successor.
        target: BlockId,
    },
    /// Direct call; after the callee returns, control resumes at `ret_to`.
    Call {
        /// The called function.
        callee: FuncId,
        /// Block executing after the call returns.
        ret_to: BlockId,
    },
    /// Indirect call through a function pointer / vtable.
    IndirectCall {
        /// Candidate callees with static weights.
        callees: Vec<(FuncId, u32)>,
        /// Block executing after the call returns.
        ret_to: BlockId,
        /// Target-selection behaviour.
        select: IndirectSelect,
    },
    /// Return to the caller.
    Return,
    /// Indirect intra-procedural jump (switch dispatch).
    IndirectJump {
        /// Candidate target blocks with static weights.
        targets: Vec<(BlockId, u32)>,
        /// Target-selection behaviour.
        select: IndirectSelect,
    },
}

impl Terminator {
    /// Whether the terminator occupies an instruction slot.
    pub fn has_instruction(&self) -> bool {
        !matches!(self, Terminator::FallThrough { .. })
    }

    /// Intra-procedural successor blocks (excluding call/return edges).
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::FallThrough { next } | Terminator::Jump { target: next } => vec![*next],
            Terminator::Cond { taken, not_taken, .. } => vec![*taken, *not_taken],
            Terminator::Call { ret_to, .. } | Terminator::IndirectCall { ret_to, .. } => {
                vec![*ret_to]
            }
            Terminator::Return => vec![],
            Terminator::IndirectJump { targets, .. } => targets.iter().map(|&(b, _)| b).collect(),
        }
    }
}

/// A basic block: straight-line body instructions plus a terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct BasicBlock {
    pub(crate) id: BlockId,
    pub(crate) func: FuncId,
    pub(crate) body: Vec<StaticInst>,
    pub(crate) term: Terminator,
}

impl BasicBlock {
    /// The block's id.
    #[inline]
    pub fn id(&self) -> BlockId {
        self.id
    }

    /// The function owning this block.
    #[inline]
    pub fn func(&self) -> FuncId {
        self.func
    }

    /// The non-control body instructions.
    #[inline]
    pub fn body(&self) -> &[StaticInst] {
        &self.body
    }

    /// The terminator.
    #[inline]
    pub fn terminator(&self) -> &Terminator {
        &self.term
    }

    /// Number of instructions this block contributes to the image, before
    /// layout fix-ups: body plus the terminator instruction if any.
    #[inline]
    pub fn len_insts(&self) -> usize {
        self.body.len() + usize::from(self.term.has_instruction())
    }
}

/// A function: an entry block and the ordered list of blocks it owns.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    pub(crate) id: FuncId,
    pub(crate) name: String,
    pub(crate) entry: BlockId,
    pub(crate) blocks: Vec<BlockId>,
}

impl Function {
    /// The function's id.
    #[inline]
    pub fn id(&self) -> FuncId {
        self.id
    }

    /// The function's name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The entry block.
    #[inline]
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// Blocks owned by the function, in source (creation) order.
    #[inline]
    pub fn blocks(&self) -> &[BlockId] {
        &self.blocks
    }
}

/// A whole-program control-flow graph.
///
/// Construct with [`crate::CfgBuilder`] or generate with
/// [`crate::gen::ProgramGenerator`]; a `Cfg` is immutable once built, so all
/// downstream artifacts (profiles, layouts, images) can borrow it freely.
#[derive(Debug, Clone, PartialEq)]
pub struct Cfg {
    pub(crate) funcs: Vec<Function>,
    pub(crate) blocks: Vec<BasicBlock>,
    pub(crate) entry: FuncId,
}

impl Cfg {
    /// The program entry function (`main`).
    #[inline]
    pub fn entry(&self) -> FuncId {
        self.entry
    }

    /// The entry block of the entry function.
    #[inline]
    pub fn entry_block(&self) -> BlockId {
        self.func(self.entry).entry
    }

    /// Looks up a function.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this CFG.
    #[inline]
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.index()]
    }

    /// Looks up a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this CFG.
    #[inline]
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    /// All functions, in creation order.
    #[inline]
    pub fn funcs(&self) -> &[Function] {
        &self.funcs
    }

    /// All blocks, in creation order.
    #[inline]
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// Number of blocks.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Number of functions.
    #[inline]
    pub fn num_funcs(&self) -> usize {
        self.funcs.len()
    }

    /// Total static instruction count before layout fix-ups.
    pub fn static_insts(&self) -> usize {
        self.blocks.iter().map(BasicBlock::len_insts).sum()
    }

    /// Count of static conditional branches.
    pub fn num_cond_branches(&self) -> usize {
        self.blocks.iter().filter(|b| matches!(b.term, Terminator::Cond { .. })).count()
    }

    /// Iterates over `(block, behaviour)` for every conditional branch.
    pub fn cond_branches(&self) -> impl Iterator<Item = (BlockId, &CondBehavior)> {
        self.blocks.iter().filter_map(|b| match &b.term {
            Terminator::Cond { behavior, .. } => Some((b.id, behavior)),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CfgBuilder;

    fn tiny() -> Cfg {
        // main: a -> (cond) b | c ; b,c -> d ; d: return
        let mut bld = CfgBuilder::new();
        let f = bld.add_func("main");
        let a = bld.add_block(f, 3);
        let b = bld.add_block(f, 2);
        let c = bld.add_block(f, 4);
        let d = bld.add_block(f, 1);
        bld.set_cond(a, b, c, CondBehavior::Bernoulli { p_taken: 0.5 });
        bld.set_jump(b, d);
        bld.set_fallthrough(c, d);
        bld.set_return(d);
        bld.set_entry(f, a);
        bld.finish().expect("valid cfg")
    }

    #[test]
    fn block_lengths_include_terminators() {
        let cfg = tiny();
        let blocks = cfg.blocks();
        assert_eq!(blocks[0].len_insts(), 4, "3 body + cond branch");
        assert_eq!(blocks[1].len_insts(), 3, "2 body + jump");
        assert_eq!(blocks[2].len_insts(), 4, "fallthrough adds no instruction");
        assert_eq!(blocks[3].len_insts(), 2, "1 body + return");
        assert_eq!(cfg.static_insts(), 13);
    }

    #[test]
    fn successors_enumerate_cfg_edges() {
        let cfg = tiny();
        let a = &cfg.blocks()[0];
        assert_eq!(a.terminator().successors().len(), 2);
        let d = &cfg.blocks()[3];
        assert!(d.terminator().successors().is_empty());
    }

    #[test]
    fn entry_points_resolve() {
        let cfg = tiny();
        assert_eq!(cfg.entry().index(), 0);
        assert_eq!(cfg.entry_block().index(), 0);
        assert_eq!(cfg.func(cfg.entry()).name(), "main");
        assert_eq!(cfg.num_cond_branches(), 1);
        assert_eq!(cfg.cond_branches().count(), 1);
    }

    #[test]
    fn ids_display_compactly() {
        assert_eq!(BlockId::from_index(7).to_string(), "b7");
        assert_eq!(FuncId::from_index(2).to_string(), "f2");
    }
}
