//! Branch-behaviour models.
//!
//! The paper's workloads are real SPECint2000 runs; their branch behaviour is
//! what makes each front-end's predictor succeed or fail. Our synthetic
//! programs attach an explicit *behaviour model* to every conditional and
//! indirect branch so that the aggregate dynamic statistics (taken ratios,
//! bias distribution, history predictability) can be dialed to match the
//! characterization the paper reports (≈80% not-taken branch *instances* in
//! optimized code, ≈60% of *static* branches strongly biased, etc.).
//!
//! Behaviours are *logical*: they decide which CFG successor is followed.
//! Whether that successor is reached by a physically taken branch or by
//! falling through is a property of the code layout (see
//! [`crate::layout`]) — exactly the distinction the paper's layout
//! optimizations exploit.

use std::fmt;

/// Trip-count distribution for loop back-edges.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TripCount {
    /// The loop always runs exactly `n` iterations (`n >= 1`).
    Fixed(u32),
    /// Uniformly distributed iterations in `[lo, hi]`.
    Uniform {
        /// Minimum trip count (>= 1).
        lo: u32,
        /// Maximum trip count (>= lo).
        hi: u32,
    },
    /// Geometric-like distribution with the given mean (common for
    /// while-loops over data-dependent conditions).
    Geometric {
        /// Mean trip count (>= 1).
        mean: u32,
    },
}

impl TripCount {
    /// Mean number of iterations, used for profile seeding and sizing checks.
    pub fn mean(&self) -> f64 {
        match *self {
            TripCount::Fixed(n) => f64::from(n.max(1)),
            TripCount::Uniform { lo, hi } => f64::from(lo + hi) / 2.0,
            TripCount::Geometric { mean } => f64::from(mean.max(1)),
        }
    }
}

/// Behaviour model of a conditional branch.
///
/// `true` outcomes follow the CFG's *taken edge* (the `taken` successor of
/// [`crate::graph::Terminator::Cond`]); `false` outcomes follow the
/// `not_taken` edge. These are logical directions, not physical ones.
#[derive(Debug, Clone, PartialEq)]
pub enum CondBehavior {
    /// Independent Bernoulli draws: the taken edge is followed with
    /// probability `p_taken`. A perfect predictor mispredicts
    /// `min(p, 1-p)` of instances — this models data-dependent,
    /// history-uncorrelated branches.
    Bernoulli {
        /// Probability of following the taken edge, in `[0, 1]`.
        p_taken: f64,
    },
    /// Deterministic cyclic pattern of logical directions. Fully predictable
    /// by a history-based predictor whose history reach covers the period.
    Pattern(Vec<bool>),
    /// A loop back-edge: the taken edge (staying in the loop) is followed
    /// `trip - 1` times, then the not-taken edge exits; the trip count is
    /// re-sampled on every loop entry.
    Loop {
        /// Trip-count distribution.
        trip: TripCount,
    },
    /// The outcome repeats the logical outcome of the `dist`-th most recent
    /// *conditional branch instance* (optionally inverted), with probability
    /// `1 - noise`; otherwise a fair coin. Global-history predictors learn
    /// these; per-address predictors cannot.
    Correlated {
        /// How many conditional-branch instances back to look (>= 1).
        dist: u8,
        /// Whether the correlated outcome is inverted.
        invert: bool,
        /// Probability of ignoring the correlation (0 = perfectly correlated).
        noise: f64,
    },
}

impl CondBehavior {
    /// Expected long-run probability of following the logical taken edge.
    ///
    /// Used to seed the synthetic profile and by tests that assert the
    /// generated branch mix. For [`CondBehavior::Correlated`] the marginal
    /// rate depends on the upstream branch; 0.5 is reported.
    pub fn expected_p_taken(&self) -> f64 {
        match self {
            CondBehavior::Bernoulli { p_taken } => *p_taken,
            CondBehavior::Pattern(p) => {
                if p.is_empty() {
                    0.0
                } else {
                    p.iter().filter(|&&b| b).count() as f64 / p.len() as f64
                }
            }
            CondBehavior::Loop { trip } => {
                let m = trip.mean().max(1.0);
                (m - 1.0) / m
            }
            CondBehavior::Correlated { .. } => 0.5,
        }
    }

    /// Whether the model is *strongly biased* (≥ `threshold` in one
    /// direction), the property the FTB exploits by embedding never-taken
    /// branches (§2.1).
    pub fn is_strongly_biased(&self, threshold: f64) -> bool {
        let p = self.expected_p_taken();
        p >= threshold || p <= 1.0 - threshold
    }
}

impl fmt::Display for CondBehavior {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CondBehavior::Bernoulli { p_taken } => write!(f, "bernoulli({p_taken:.2})"),
            CondBehavior::Pattern(p) => write!(f, "pattern(len={})", p.len()),
            CondBehavior::Loop { trip } => write!(f, "loop(mean={:.1})", trip.mean()),
            CondBehavior::Correlated { dist, invert, noise } => {
                write!(f, "corr(d={dist},inv={invert},noise={noise:.2})")
            }
        }
    }
}

/// Target-selection model for indirect jumps and indirect calls.
#[derive(Debug, Clone, PartialEq)]
pub enum IndirectSelect {
    /// Draw a target index by its static weight on every instance —
    /// effectively unpredictable beyond the hottest target.
    Weighted,
    /// Rotate deterministically through the given target indices — path- and
    /// history-predictable (models phase-structured dispatch loops).
    Cyclic(Vec<u16>),
}

impl IndirectSelect {
    /// The number of distinct target slots this selector can return, given
    /// `n_targets` listed targets.
    pub fn reach(&self, n_targets: usize) -> usize {
        match self {
            IndirectSelect::Weighted => n_targets,
            IndirectSelect::Cyclic(seq) => {
                seq.iter().map(|&i| i as usize).max().map_or(0, |m| (m + 1).min(n_targets))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trip_count_means() {
        assert_eq!(TripCount::Fixed(10).mean(), 10.0);
        assert_eq!(TripCount::Uniform { lo: 4, hi: 8 }.mean(), 6.0);
        assert_eq!(TripCount::Geometric { mean: 20 }.mean(), 20.0);
        assert_eq!(TripCount::Fixed(0).mean(), 1.0, "degenerate trip clamps to 1");
    }

    #[test]
    fn expected_p_taken() {
        assert_eq!(CondBehavior::Bernoulli { p_taken: 0.8 }.expected_p_taken(), 0.8);
        let pat = CondBehavior::Pattern(vec![true, true, false, false]);
        assert_eq!(pat.expected_p_taken(), 0.5);
        let lp = CondBehavior::Loop { trip: TripCount::Fixed(4) };
        assert!((lp.expected_p_taken() - 0.75).abs() < 1e-9);
        assert_eq!(CondBehavior::Pattern(vec![]).expected_p_taken(), 0.0);
    }

    #[test]
    fn strong_bias_classification() {
        assert!(CondBehavior::Bernoulli { p_taken: 0.95 }.is_strongly_biased(0.9));
        assert!(CondBehavior::Bernoulli { p_taken: 0.05 }.is_strongly_biased(0.9));
        assert!(!CondBehavior::Bernoulli { p_taken: 0.6 }.is_strongly_biased(0.9));
        // A trip-100 loop back-edge is 99% taken.
        assert!(CondBehavior::Loop { trip: TripCount::Fixed(100) }.is_strongly_biased(0.9));
    }

    #[test]
    fn indirect_reach() {
        assert_eq!(IndirectSelect::Weighted.reach(5), 5);
        assert_eq!(IndirectSelect::Cyclic(vec![0, 1, 2, 1]).reach(5), 3);
        assert_eq!(IndirectSelect::Cyclic(vec![]).reach(5), 0);
        assert_eq!(IndirectSelect::Cyclic(vec![9]).reach(3), 3, "reach clamps to target count");
    }

    #[test]
    fn display_is_informative() {
        let s = CondBehavior::Correlated { dist: 2, invert: true, noise: 0.1 }.to_string();
        assert!(s.contains("corr"));
    }
}
