//! CFG normalization: collapsing empty fall-through blocks.
//!
//! The region-based generator (and many front-ends) produce empty *merge*
//! blocks whose only job is to join control flow. They carry no
//! instructions, so routing CFG edges *through* them would force the layout
//! pass to treat them as chain endpoints and insert fix-up jumps on hot
//! paths. This pass redirects every edge to the ultimate non-empty
//! destination; the empty blocks become unreachable, zero-size residents of
//! the image.

use crate::graph::{BasicBlock, BlockId, Cfg, Terminator};

/// Returns a copy of `cfg` with all edges redirected through empty
/// fall-through blocks to their final destinations.
///
/// A block is *transparent* when it has an empty body and a plain
/// [`Terminator::FallThrough`]. Conditionals whose successors unify after
/// redirection degrade to fall-throughs (their behaviour model is dropped —
/// the branch was dead).
pub fn collapse_empty_blocks(cfg: &Cfg) -> Cfg {
    let n = cfg.num_blocks();
    // Resolve the transparent-chain target for every block, path-halving on
    // the fly. Cycles of empty blocks are impossible to execute but guard
    // anyway by bounding the walk.
    let mut resolved: Vec<Option<BlockId>> = vec![None; n];
    let resolve = |start: BlockId, resolved: &mut Vec<Option<BlockId>>| -> BlockId {
        let mut cur = start;
        let mut hops = 0;
        let mut path = Vec::new();
        loop {
            if let Some(r) = resolved[cur.index()] {
                cur = r;
                break;
            }
            let blk = cfg.block(cur);
            match blk.terminator() {
                Terminator::FallThrough { next } if blk.body().is_empty() && hops < n => {
                    path.push(cur);
                    cur = *next;
                    hops += 1;
                }
                _ => break,
            }
        }
        for b in path {
            resolved[b.index()] = Some(cur);
        }
        cur
    };

    let mut blocks = Vec::with_capacity(n);
    for blk in cfg.blocks() {
        let mut r = |b: BlockId| resolve(b, &mut resolved);
        let term = match blk.terminator().clone() {
            Terminator::FallThrough { next } => Terminator::FallThrough { next: r(next) },
            Terminator::Jump { target } => Terminator::Jump { target: r(target) },
            Terminator::Cond { taken, not_taken, behavior } => {
                let t = r(taken);
                let nt = r(not_taken);
                if t == nt {
                    Terminator::FallThrough { next: t }
                } else {
                    Terminator::Cond { taken: t, not_taken: nt, behavior }
                }
            }
            Terminator::Call { callee, ret_to } => {
                Terminator::Call { callee, ret_to: r(ret_to) }
            }
            Terminator::IndirectCall { callees, ret_to, select } => {
                Terminator::IndirectCall { callees, ret_to: r(ret_to), select }
            }
            Terminator::Return => Terminator::Return,
            Terminator::IndirectJump { targets, select } => Terminator::IndirectJump {
                targets: targets.into_iter().map(|(b, w)| (r(b), w)).collect(),
                select,
            },
        };
        blocks.push(BasicBlock {
            id: blk.id(),
            func: blk.func(),
            body: blk.body().to_vec(),
            term,
        });
    }

    let mut funcs = cfg.funcs().to_vec();
    for f in &mut funcs {
        f.entry = resolve(f.entry, &mut resolved);
    }
    Cfg { funcs, blocks, entry: cfg.entry() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::CondBehavior;
    use crate::builder::CfgBuilder;

    #[test]
    fn chains_of_empty_blocks_collapse() {
        let mut bld = CfgBuilder::new();
        let f = bld.add_func("main");
        let a = bld.add_block(f, 1);
        let e1 = bld.add_block(f, 0);
        let e2 = bld.add_block(f, 0);
        let b = bld.add_block(f, 1);
        bld.set_fallthrough(a, e1);
        bld.set_fallthrough(e1, e2);
        bld.set_fallthrough(e2, b);
        bld.set_return(b);
        let cfg = collapse_empty_blocks(&bld.finish().expect("valid"));
        match cfg.block(a).terminator() {
            Terminator::FallThrough { next } => assert_eq!(*next, b),
            t => panic!("expected fallthrough, got {t:?}"),
        }
    }

    #[test]
    fn degenerate_cond_becomes_fallthrough() {
        let mut bld = CfgBuilder::new();
        let f = bld.add_func("main");
        let a = bld.add_block(f, 1);
        let e1 = bld.add_block(f, 0);
        let e2 = bld.add_block(f, 0);
        let b = bld.add_block(f, 1);
        bld.set_cond(a, e1, e2, CondBehavior::Bernoulli { p_taken: 0.5 });
        bld.set_fallthrough(e1, b);
        bld.set_fallthrough(e2, b);
        bld.set_return(b);
        let cfg = collapse_empty_blocks(&bld.finish().expect("valid"));
        assert!(matches!(
            cfg.block(a).terminator(),
            Terminator::FallThrough { next } if *next == b
        ));
    }

    #[test]
    fn entry_through_empty_block_resolves() {
        let mut bld = CfgBuilder::new();
        let f = bld.add_func("main");
        let e = bld.add_block(f, 0);
        let b = bld.add_block(f, 1);
        bld.set_fallthrough(e, b);
        bld.set_return(b);
        let cfg = collapse_empty_blocks(&bld.finish().expect("valid"));
        assert_eq!(cfg.func(f).entry(), b);
        assert_eq!(cfg.entry_block(), b);
    }

    #[test]
    fn non_empty_blocks_untouched() {
        let mut bld = CfgBuilder::new();
        let f = bld.add_func("main");
        let a = bld.add_block(f, 1);
        let b = bld.add_block(f, 2);
        bld.set_fallthrough(a, b);
        bld.set_return(b);
        let orig = bld.finish().expect("valid");
        let cfg = collapse_empty_blocks(&orig);
        assert_eq!(cfg, orig);
    }
}
