//! Programmatic construction of [`Cfg`]s with validation.

use std::error::Error;
use std::fmt;

use sfetch_isa::{InstClass, StaticInst};

use crate::behavior::{CondBehavior, IndirectSelect};
use crate::graph::{BasicBlock, BlockId, Cfg, FuncId, Function, Terminator};

/// Error produced by [`CfgBuilder::finish`] when the graph is malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildCfgError {
    /// A block was never given a terminator.
    MissingTerminator(BlockId),
    /// A function has no blocks.
    EmptyFunction(FuncId),
    /// An intra-procedural edge crosses a function boundary.
    CrossFunctionEdge {
        /// Source block.
        from: BlockId,
        /// Offending target block.
        to: BlockId,
    },
    /// A conditional branch lists the same block for both directions.
    DegenerateCond(BlockId),
    /// An indirect terminator has no targets.
    EmptyIndirect(BlockId),
    /// The program has no functions.
    NoFunctions,
    /// No entry function was designated and function 0 does not exist.
    NoEntry,
}

impl fmt::Display for BuildCfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildCfgError::MissingTerminator(b) => write!(f, "block {b} has no terminator"),
            BuildCfgError::EmptyFunction(func) => write!(f, "function {func} has no blocks"),
            BuildCfgError::CrossFunctionEdge { from, to } => {
                write!(f, "edge {from} -> {to} crosses a function boundary")
            }
            BuildCfgError::DegenerateCond(b) => {
                write!(f, "conditional at {b} has identical successors")
            }
            BuildCfgError::EmptyIndirect(b) => {
                write!(f, "indirect terminator at {b} has no targets")
            }
            BuildCfgError::NoFunctions => f.write_str("program has no functions"),
            BuildCfgError::NoEntry => f.write_str("program has no entry function"),
        }
    }
}

impl Error for BuildCfgError {}

/// Incremental builder for [`Cfg`] values.
///
/// The builder hands out [`BlockId`]s/[`FuncId`]s eagerly so cyclic graphs
/// (loops!) can be wired naturally; [`CfgBuilder::finish`] validates the
/// result.
///
/// ```
/// use sfetch_cfg::{CfgBuilder, CondBehavior};
///
/// let mut b = CfgBuilder::new();
/// let f = b.add_func("main");
/// let head = b.add_block(f, 2);
/// let body = b.add_block(f, 5);
/// let exit = b.add_block(f, 1);
/// b.set_fallthrough(head, body);
/// // loop: stay in `body` 9 out of 10 iterations
/// b.set_cond(body, body, exit, CondBehavior::Loop { trip: sfetch_cfg::TripCount::Fixed(10) });
/// b.set_return(exit);
/// b.set_entry(f, head);
/// let cfg = b.finish()?;
/// assert_eq!(cfg.num_blocks(), 3);
/// # Ok::<(), sfetch_cfg::builder::BuildCfgError>(())
/// ```
#[derive(Debug, Default)]
pub struct CfgBuilder {
    funcs: Vec<Function>,
    blocks: Vec<PendingBlock>,
    entry: Option<FuncId>,
}

#[derive(Debug)]
struct PendingBlock {
    id: BlockId,
    func: FuncId,
    body: Vec<StaticInst>,
    term: Option<Terminator>,
}

impl CfgBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a function; the first block added to it becomes its entry unless
    /// overridden with [`CfgBuilder::set_entry`].
    pub fn add_func(&mut self, name: &str) -> FuncId {
        let id = FuncId(self.funcs.len() as u32);
        self.funcs.push(Function {
            id,
            name: name.to_owned(),
            entry: BlockId(u32::MAX),
            blocks: Vec::new(),
        });
        id
    }

    /// Adds a block with `n_alu` single-cycle ALU body instructions.
    ///
    /// Use [`CfgBuilder::add_block_with`] for custom bodies.
    pub fn add_block(&mut self, func: FuncId, n_alu: usize) -> BlockId {
        let body = vec![StaticInst::simple(InstClass::IntAlu); n_alu];
        self.add_block_with(func, body)
    }

    /// Adds a block with an explicit body.
    ///
    /// # Panics
    ///
    /// Panics if `func` was not created by this builder.
    pub fn add_block_with(&mut self, func: FuncId, body: Vec<StaticInst>) -> BlockId {
        assert!(func.index() < self.funcs.len(), "unknown function {func}");
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(PendingBlock { id, func, body, term: None });
        let fun = &mut self.funcs[func.index()];
        if fun.blocks.is_empty() {
            fun.entry = id;
        }
        fun.blocks.push(id);
        id
    }

    /// Overrides a function's entry block.
    pub fn set_entry(&mut self, func: FuncId, entry: BlockId) {
        self.funcs[func.index()].entry = entry;
        if self.entry.is_none() {
            self.entry = Some(func);
        }
    }

    /// Designates the program entry function (defaults to function 0).
    pub fn set_program_entry(&mut self, func: FuncId) {
        self.entry = Some(func);
    }

    fn set_term(&mut self, b: BlockId, t: Terminator) {
        self.blocks[b.index()].term = Some(t);
    }

    /// Terminates `b` by falling through to `next`.
    pub fn set_fallthrough(&mut self, b: BlockId, next: BlockId) {
        self.set_term(b, Terminator::FallThrough { next });
    }

    /// Terminates `b` with a conditional branch.
    pub fn set_cond(&mut self, b: BlockId, taken: BlockId, not_taken: BlockId, beh: CondBehavior) {
        self.set_term(b, Terminator::Cond { taken, not_taken, behavior: beh });
    }

    /// Terminates `b` with an unconditional jump.
    pub fn set_jump(&mut self, b: BlockId, target: BlockId) {
        self.set_term(b, Terminator::Jump { target });
    }

    /// Terminates `b` with a direct call; control resumes at `ret_to`.
    pub fn set_call(&mut self, b: BlockId, callee: FuncId, ret_to: BlockId) {
        self.set_term(b, Terminator::Call { callee, ret_to });
    }

    /// Terminates `b` with an indirect call.
    pub fn set_indirect_call(
        &mut self,
        b: BlockId,
        callees: Vec<(FuncId, u32)>,
        ret_to: BlockId,
        select: IndirectSelect,
    ) {
        self.set_term(b, Terminator::IndirectCall { callees, ret_to, select });
    }

    /// Terminates `b` with a return.
    pub fn set_return(&mut self, b: BlockId) {
        self.set_term(b, Terminator::Return);
    }

    /// Terminates `b` with an indirect (switch) jump.
    pub fn set_indirect_jump(
        &mut self,
        b: BlockId,
        targets: Vec<(BlockId, u32)>,
        select: IndirectSelect,
    ) {
        self.set_term(b, Terminator::IndirectJump { targets, select });
    }

    /// Validates and produces the immutable [`Cfg`].
    ///
    /// # Errors
    ///
    /// Returns a [`BuildCfgError`] describing the first structural problem
    /// found: unterminated blocks, empty functions, cross-function edges,
    /// degenerate conditionals, or empty indirect target lists.
    pub fn finish(self) -> Result<Cfg, BuildCfgError> {
        if self.funcs.is_empty() {
            return Err(BuildCfgError::NoFunctions);
        }
        let entry = self.entry.unwrap_or(FuncId(0));
        for f in &self.funcs {
            if f.blocks.is_empty() {
                return Err(BuildCfgError::EmptyFunction(f.id));
            }
        }
        let mut blocks = Vec::with_capacity(self.blocks.len());
        for pb in self.blocks {
            let term = pb.term.ok_or(BuildCfgError::MissingTerminator(pb.id))?;
            // Intra-procedural targets must stay within the function.
            let check = |to: BlockId| -> Result<(), BuildCfgError> {
                if self.funcs[pb.func.index()].blocks.contains(&to) {
                    Ok(())
                } else {
                    Err(BuildCfgError::CrossFunctionEdge { from: pb.id, to })
                }
            };
            match &term {
                Terminator::FallThrough { next } | Terminator::Jump { target: next } => {
                    check(*next)?
                }
                Terminator::Cond { taken, not_taken, .. } => {
                    if taken == not_taken {
                        return Err(BuildCfgError::DegenerateCond(pb.id));
                    }
                    check(*taken)?;
                    check(*not_taken)?;
                }
                Terminator::Call { ret_to, .. } => check(*ret_to)?,
                Terminator::IndirectCall { callees, ret_to, .. } => {
                    if callees.is_empty() {
                        return Err(BuildCfgError::EmptyIndirect(pb.id));
                    }
                    check(*ret_to)?;
                }
                Terminator::Return => {}
                Terminator::IndirectJump { targets, .. } => {
                    if targets.is_empty() {
                        return Err(BuildCfgError::EmptyIndirect(pb.id));
                    }
                    for &(t, _) in targets {
                        check(t)?;
                    }
                }
            }
            blocks.push(BasicBlock { id: pb.id, func: pb.func, body: pb.body, term });
        }
        Ok(Cfg { funcs: self.funcs, blocks, entry })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripCount;

    #[test]
    fn rejects_missing_terminator() {
        let mut b = CfgBuilder::new();
        let f = b.add_func("main");
        let blk = b.add_block(f, 1);
        assert_eq!(b.finish(), Err(BuildCfgError::MissingTerminator(blk)));
    }

    #[test]
    fn rejects_empty_function() {
        let mut b = CfgBuilder::new();
        let f = b.add_func("main");
        let blk = b.add_block(f, 1);
        b.set_return(blk);
        let g = b.add_func("empty");
        assert_eq!(b.finish(), Err(BuildCfgError::EmptyFunction(g)));
    }

    #[test]
    fn rejects_cross_function_edge() {
        let mut b = CfgBuilder::new();
        let f = b.add_func("main");
        let g = b.add_func("aux");
        let bf = b.add_block(f, 1);
        let bg = b.add_block(g, 1);
        b.set_jump(bf, bg);
        b.set_return(bg);
        assert!(matches!(b.finish(), Err(BuildCfgError::CrossFunctionEdge { .. })));
    }

    #[test]
    fn rejects_degenerate_cond() {
        let mut b = CfgBuilder::new();
        let f = b.add_func("main");
        let x = b.add_block(f, 1);
        let y = b.add_block(f, 1);
        b.set_cond(x, y, y, CondBehavior::Bernoulli { p_taken: 0.5 });
        b.set_return(y);
        assert_eq!(b.finish(), Err(BuildCfgError::DegenerateCond(x)));
    }

    #[test]
    fn rejects_empty_indirect() {
        let mut b = CfgBuilder::new();
        let f = b.add_func("main");
        let x = b.add_block(f, 1);
        b.set_indirect_jump(x, vec![], crate::IndirectSelect::Weighted);
        assert_eq!(b.finish(), Err(BuildCfgError::EmptyIndirect(x)));
    }

    #[test]
    fn rejects_empty_program() {
        assert_eq!(CfgBuilder::new().finish(), Err(BuildCfgError::NoFunctions));
    }

    #[test]
    fn builds_loop_with_call() {
        let mut b = CfgBuilder::new();
        let main = b.add_func("main");
        let leaf = b.add_func("leaf");
        let head = b.add_block(main, 2);
        let body = b.add_block(main, 3);
        let back = b.add_block(main, 0);
        let exit = b.add_block(main, 1);
        let l0 = b.add_block(leaf, 4);
        b.set_fallthrough(head, body);
        b.set_call(body, leaf, back);
        b.set_cond(back, head, exit, CondBehavior::Loop { trip: TripCount::Fixed(8) });
        b.set_return(exit);
        b.set_return(l0);
        let cfg = b.finish().expect("valid");
        assert_eq!(cfg.num_funcs(), 2);
        assert_eq!(cfg.num_blocks(), 5);
        assert_eq!(cfg.func(main).entry(), head);
        // back block: 0 body + cond = 1 inst
        assert_eq!(cfg.block(back).len_insts(), 1);
    }

    #[test]
    fn error_messages_are_lowercase_prose() {
        let msg = BuildCfgError::NoFunctions.to_string();
        assert!(msg.starts_with(char::is_lowercase));
    }
}
