//! Code layout passes.
//!
//! The paper relies on *code layout optimizations* (§2.4): profile-guided
//! basic-block chaining and procedure placement in the style of Pettis &
//! Hansen (the `spike` tool). Their two effects are what the stream
//! front-end exploits:
//!
//! 1. **branch alignment** — the hot successor of a conditional branch is
//!    made the physical fall-through, so ~80% of branch *instances* become
//!    not-taken and streams grow long;
//! 2. **sequential packing** — hot code is contiguous, so wide cache lines
//!    are fully used and conflict misses drop.
//!
//! A [`Layout`] is just an ordering of blocks; the [`crate::CodeImage`]
//! materializes addresses, flips branch senses so the chained successor
//! falls through, inserts fix-up jumps for non-adjacent successors, and
//! elides jumps to adjacent targets.

use std::collections::HashMap;

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::graph::{BlockId, Cfg, FuncId, Terminator};
use crate::profile::EdgeProfile;

/// Which pass produced a layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayoutKind {
    /// Source (creation) order — the paper's *baseline* binaries.
    Natural,
    /// Profile-guided Pettis–Hansen chaining + procedure placement — the
    /// paper's *layout optimized* binaries.
    PettisHansen,
    /// Randomized block order — a pessimal layout used in ablations.
    Random,
}

impl std::fmt::Display for LayoutKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LayoutKind::Natural => f.write_str("base"),
            LayoutKind::PettisHansen => f.write_str("optimized"),
            LayoutKind::Random => f.write_str("random"),
        }
    }
}

/// A total order over a program's basic blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    kind: LayoutKind,
    order: Vec<BlockId>,
}

impl Layout {
    /// The pass that produced this layout.
    pub fn kind(&self) -> LayoutKind {
        self.kind
    }

    /// Blocks in placement order.
    pub fn order(&self) -> &[BlockId] {
        &self.order
    }

    /// Validates that `order` is a permutation of the program's blocks.
    fn assert_permutation(&self, cfg: &Cfg) {
        let mut seen = vec![false; cfg.num_blocks()];
        for &b in &self.order {
            assert!(!seen[b.index()], "block {b} placed twice");
            seen[b.index()] = true;
        }
        assert!(seen.iter().all(|&s| s), "layout does not place every block");
    }
}

/// Source-order layout: blocks grouped by function, in creation order.
/// This is the paper's *baseline* binary.
pub fn natural(cfg: &Cfg) -> Layout {
    let mut order = Vec::with_capacity(cfg.num_blocks());
    for f in cfg.funcs() {
        order.extend_from_slice(f.blocks());
    }
    let l = Layout { kind: LayoutKind::Natural, order };
    l.assert_permutation(cfg);
    l
}

/// Randomized layout: functions shuffled and blocks shuffled within each
/// function. Used by ablation benches as a pessimal reference point.
pub fn random(cfg: &Cfg, seed: u64) -> Layout {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut fun_order: Vec<FuncId> = cfg.funcs().iter().map(|f| f.id()).collect();
    fun_order.shuffle(&mut rng);
    let mut order = Vec::with_capacity(cfg.num_blocks());
    for f in fun_order {
        let mut blocks = cfg.func(f).blocks().to_vec();
        blocks.shuffle(&mut rng);
        order.extend(blocks);
    }
    let l = Layout { kind: LayoutKind::Random, order };
    l.assert_permutation(cfg);
    l
}

/// Profile-guided Pettis–Hansen layout: bottom-up chain formation within
/// each function, hot-first chain ordering, and call-affinity procedure
/// placement. This is the paper's *layout optimized* binary (spike).
pub fn pettis_hansen(cfg: &Cfg, profile: &EdgeProfile) -> Layout {
    // --- 1. Per-function chaining ------------------------------------------------
    let mut func_layouts: HashMap<FuncId, Vec<BlockId>> = HashMap::new();
    for f in cfg.funcs() {
        func_layouts.insert(f.id(), chain_function(cfg, profile, f.id()));
    }

    // --- 2. Procedure placement by call affinity ---------------------------------
    let fun_order = order_functions(cfg, profile);

    let mut order = Vec::with_capacity(cfg.num_blocks());
    for f in fun_order {
        order.extend(func_layouts.remove(&f).expect("every function chained"));
    }
    let l = Layout { kind: LayoutKind::PettisHansen, order };
    l.assert_permutation(cfg);
    l
}

/// Forms chains of blocks within one function by merging along hot edges,
/// then emits the entry chain first and remaining chains by hotness.
fn chain_function(cfg: &Cfg, profile: &EdgeProfile, f: FuncId) -> Vec<BlockId> {
    let fun = cfg.func(f);
    let blocks = fun.blocks();

    // Collect layout-relevant edges: an edge (a, b) means "placing b right
    // after a removes a taken branch / fix-up jump".
    let mut edges: Vec<(BlockId, BlockId, u64)> = Vec::new();
    for &b in blocks {
        let blk = cfg.block(b);
        match blk.terminator() {
            Terminator::FallThrough { next } | Terminator::Jump { target: next } => {
                edges.push((b, *next, profile.edge_count(b, *next).max(1)));
            }
            Terminator::Cond { taken, not_taken, .. } => {
                edges.push((b, *taken, profile.edge_count(b, *taken)));
                edges.push((b, *not_taken, profile.edge_count(b, *not_taken)));
            }
            // The return point must follow the call instruction; give the
            // edge the block's own weight so it is chained early.
            Terminator::Call { ret_to, .. } | Terminator::IndirectCall { ret_to, .. } => {
                edges.push((b, *ret_to, profile.block_count(b).max(1) * 2));
            }
            Terminator::Return => {}
            Terminator::IndirectJump { targets, .. } => {
                for &(t, _) in targets {
                    edges.push((b, t, profile.edge_count(b, t)));
                }
            }
        }
    }
    edges.sort_by(|x, y| y.2.cmp(&x.2).then(x.0.cmp(&y.0)).then(x.1.cmp(&y.1)));

    // Union-find-ish chain structures.
    let mut chain_of: HashMap<BlockId, usize> = HashMap::new();
    let mut chains: Vec<Vec<BlockId>> = Vec::new();
    for &b in blocks {
        chain_of.insert(b, chains.len());
        chains.push(vec![b]);
    }
    for (a, b, w) in edges {
        if w == 0 || a == b {
            continue;
        }
        let ca = chain_of[&a];
        let cb = chain_of[&b];
        if ca == cb {
            continue;
        }
        // Merge only tail-of(ca) == a and head-of(cb) == b.
        if *chains[ca].last().expect("chains non-empty") != a
            || *chains[cb].first().expect("chains non-empty") != b
        {
            continue;
        }
        let tail = std::mem::take(&mut chains[cb]);
        for &blk in &tail {
            chain_of.insert(blk, ca);
        }
        chains[ca].extend(tail);
    }

    // Emit: entry chain first, then by total chain weight (descending), so
    // hot code packs together and cold blocks sink to the function's end.
    let entry_chain = chain_of[&fun.entry()];
    let mut rest: Vec<usize> = (0..chains.len())
        .filter(|&i| i != entry_chain && !chains[i].is_empty())
        .collect();
    let chain_weight = |i: usize| -> u64 {
        chains[i].iter().map(|&b| profile.block_count(b)).sum()
    };
    rest.sort_by(|&x, &y| chain_weight(y).cmp(&chain_weight(x)).then(x.cmp(&y)));

    let mut out = Vec::with_capacity(blocks.len());
    out.extend(&chains[entry_chain]);
    for i in rest {
        out.extend(&chains[i]);
    }
    out
}

/// Orders functions by call affinity: greedy merge of the hottest
/// caller/callee pairs (Pettis–Hansen "closest is best" simplification),
/// entry function first.
fn order_functions(cfg: &Cfg, profile: &EdgeProfile) -> Vec<FuncId> {
    let n = cfg.num_funcs();
    let mut seqs: Vec<Vec<FuncId>> = cfg.funcs().iter().map(|f| vec![f.id()]).collect();
    let mut seq_of: HashMap<FuncId, usize> = cfg.funcs().iter().map(|f| (f.id(), f.id().index())).collect();

    let mut call_edges: Vec<(FuncId, FuncId, u64)> = profile.calls().collect();
    call_edges.sort_by(|x, y| y.2.cmp(&x.2).then(x.0.cmp(&y.0)).then(x.1.cmp(&y.1)));
    for (a, b, w) in call_edges {
        if w == 0 || a == b {
            continue;
        }
        let sa = seq_of[&a];
        let sb = seq_of[&b];
        if sa == sb {
            continue;
        }
        let tail = std::mem::take(&mut seqs[sb]);
        for &f in &tail {
            seq_of.insert(f, sa);
        }
        seqs[sa].extend(tail);
    }

    let entry_seq = seq_of[&cfg.entry()];
    let mut out = Vec::with_capacity(n);
    out.extend(&seqs[entry_seq]);
    let mut rest: Vec<usize> =
        (0..seqs.len()).filter(|&i| i != entry_seq && !seqs[i].is_empty()).collect();
    let seq_weight = |i: usize| -> u64 {
        seqs[i]
            .iter()
            .map(|&f| profile.block_count(cfg.func(f).entry()))
            .sum()
    };
    rest.sort_by(|&x, &y| seq_weight(y).cmp(&seq_weight(x)).then(x.cmp(&y)));
    for i in rest {
        out.extend(&seqs[i]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CfgBuilder;
    use crate::CondBehavior;

    /// main: a --cond(p_taken=.9)--> hot | cold ; both -> exit(ret)
    /// Natural order places `hot` (taken target) *after* cold only if created
    /// so; P-H must place `hot` right after `a`.
    fn hammock() -> (Cfg, BlockId, BlockId, BlockId) {
        let mut bld = CfgBuilder::new();
        let f = bld.add_func("main");
        let a = bld.add_block(f, 2);
        let cold = bld.add_block(f, 2); // created first after a => natural fallthrough
        let hot = bld.add_block(f, 2);
        let exit = bld.add_block(f, 1);
        bld.set_cond(a, hot, cold, CondBehavior::Bernoulli { p_taken: 0.9 });
        bld.set_fallthrough(cold, exit);
        bld.set_fallthrough(hot, exit);
        bld.set_return(exit);
        (bld.finish().expect("valid"), a, hot, cold)
    }

    #[test]
    fn natural_is_creation_order() {
        let (cfg, ..) = hammock();
        let l = natural(&cfg);
        assert_eq!(l.kind(), LayoutKind::Natural);
        let idx: Vec<usize> = l.order().iter().map(|b| b.index()).collect();
        assert_eq!(idx, vec![0, 1, 2, 3]);
    }

    #[test]
    fn pettis_hansen_places_hot_successor_adjacent() {
        let (cfg, a, hot, _cold) = hammock();
        let p = EdgeProfile::from_expected(&cfg);
        let l = pettis_hansen(&cfg, &p);
        let pos = |b: BlockId| l.order().iter().position(|&x| x == b).expect("placed");
        assert_eq!(pos(hot), pos(a) + 1, "hot successor must fall through");
    }

    #[test]
    fn random_layout_is_a_permutation_and_deterministic() {
        let (cfg, ..) = hammock();
        let l1 = random(&cfg, 99);
        let l2 = random(&cfg, 99);
        assert_eq!(l1, l2);
        assert_eq!(l1.order().len(), cfg.num_blocks());
    }

    #[test]
    fn ph_handles_multi_function_programs() {
        use crate::gen::{GenParams, ProgramGenerator};
        let cfg = ProgramGenerator::new(GenParams::small(), 17).generate();
        let p = EdgeProfile::from_expected(&cfg);
        let l = pettis_hansen(&cfg, &p);
        assert_eq!(l.order().len(), cfg.num_blocks());
        // The entry function leads the image (its entry block may sit
        // mid-chain; calls/branches resolve it by address).
        assert_eq!(cfg.block(l.order()[0]).func(), cfg.entry());
    }

    #[test]
    fn layout_kind_displays_paper_labels() {
        assert_eq!(LayoutKind::Natural.to_string(), "base");
        assert_eq!(LayoutKind::PettisHansen.to_string(), "optimized");
    }
}
