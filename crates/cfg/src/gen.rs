//! Synthetic program generation.
//!
//! The paper's workloads are the SPECint2000 benchmarks. We cannot ship
//! those, so this module generates *structured synthetic programs* whose
//! dynamic properties — basic-block sizes, branch bias mix, loop structure,
//! call depth, indirect-branch density, instruction footprint — are the knobs
//! ([`GenParams`]) that the `sfetch-workloads` crate dials per benchmark to
//! mirror the published SPECint characterization.
//!
//! Programs are generated as region trees (sequences, if/if-else hammocks,
//! loops, switches, call sites) and lowered to a [`Cfg`] in *source order*,
//! so the natural layout (`layout::natural`) corresponds to what a
//! non-optimizing compiler would emit, and the Pettis–Hansen pass has real
//! work to do.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use sfetch_isa::{Addr, DepDistance, InstClass, MemPattern, StaticInst};

use crate::behavior::{CondBehavior, IndirectSelect, TripCount};
use crate::builder::CfgBuilder;
use crate::graph::{BlockId, Cfg, FuncId};

/// Base address of the synthetic data segment (memory patterns live here,
/// far from code addresses).
pub const DATA_BASE: u64 = 0x1000_0000;

/// Mix of conditional-branch behaviour classes, as fractions that should sum
/// to ~1.0 (they are normalized when sampling).
///
/// The classes map to the phenomenology the paper relies on: strongly biased
/// branches are what the FTB embeds and layout aligns; patterned/correlated
/// branches are where history predictors (2bcgskew, perceptron, and the
/// path-correlated stream/trace predictors) earn their keep; balanced
/// branches set the misprediction floor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BiasMix {
    /// Strongly biased Bernoulli branches (p in [0.02, 0.10] of the rare
    /// side).
    pub strong: f64,
    /// Moderately biased Bernoulli branches (p in [0.65, 0.90]).
    pub moderate: f64,
    /// Balanced, history-uncorrelated branches (p in [0.35, 0.65]).
    pub balanced: f64,
    /// Deterministic cyclic patterns (period 2–12).
    pub pattern: f64,
    /// Branches correlated with a recent branch outcome.
    pub correlated: f64,
}

impl BiasMix {
    /// A mix typical of integer codes: mostly strongly biased branches,
    /// a history-predictable population (patterns/correlation), and a small
    /// genuinely data-dependent fraction. Calibrated so Table 2-class
    /// predictors land in the paper's 2–4% misprediction band.
    pub const fn default_int() -> Self {
        BiasMix { strong: 0.50, moderate: 0.14, balanced: 0.03, pattern: 0.18, correlated: 0.15 }
    }
}

/// Knobs controlling synthetic program generation.
#[derive(Debug, Clone, PartialEq)]
pub struct GenParams {
    /// Number of functions (function 0 is `main`).
    pub n_funcs: usize,
    /// Inclusive range of the per-function block budget.
    pub blocks_per_func: (usize, usize),
    /// Inclusive range of body (non-terminator) instructions per block.
    pub body_len: (usize, usize),
    /// Probability that a region expands into a loop.
    pub p_loop: f64,
    /// Probability that a region expands into an if / if-else hammock.
    pub p_if: f64,
    /// Probability that a region expands into a call site.
    pub p_call: f64,
    /// Probability that a region expands into a switch (indirect jump).
    pub p_switch: f64,
    /// Fraction of call sites that are indirect calls.
    pub indirect_call_frac: f64,
    /// Maximum region nesting depth.
    pub max_depth: usize,
    /// Conditional-branch behaviour mix.
    pub bias: BiasMix,
    /// Mean loop trip count (sampled around this).
    pub mean_trip: u32,
    /// Fraction of body instructions that are memory operations.
    pub mem_frac: f64,
    /// Fraction of memory operations that are loads (rest are stores).
    pub load_frac: f64,
    /// Approximate bytes of data footprint available to cold accesses.
    pub data_footprint: u64,
    /// Fraction of memory instructions walking a footprint larger than a
    /// typical L1 data cache (drives the D-cache miss rate).
    pub cold_mem_frac: f64,
    /// Mean register-dependence distance (smaller = less ILP).
    pub mean_dep_dist: f64,
}

impl GenParams {
    /// Mid-size defaults: a few dozen functions, SPECint-like branch mix.
    pub fn default_int() -> Self {
        GenParams {
            n_funcs: 40,
            blocks_per_func: (12, 60),
            body_len: (1, 9),
            p_loop: 0.16,
            p_if: 0.48,
            p_call: 0.18,
            p_switch: 0.02,
            indirect_call_frac: 0.08,
            max_depth: 4,
            bias: BiasMix::default_int(),
            mean_trip: 24,
            mem_frac: 0.32,
            load_frac: 0.72,
            data_footprint: 8 << 20,
            cold_mem_frac: 0.02,
            mean_dep_dist: 4.0,
        }
    }

    /// A tiny configuration for unit tests: a handful of functions and
    /// blocks, fast to generate and simulate.
    pub fn small() -> Self {
        GenParams {
            n_funcs: 4,
            blocks_per_func: (6, 14),
            p_switch: 0.05,
            ..Self::default_int()
        }
    }
}

/// A structured region before lowering.
#[derive(Debug)]
enum Region {
    Plain,
    Seq(Vec<Region>),
    If { then_r: Box<Region>, beh: CondBehavior },
    IfElse { then_r: Box<Region>, else_r: Box<Region>, beh: CondBehavior },
    Loop { body: Box<Region>, trip: TripCount },
    Switch { arms: Vec<(Region, u32)>, select: IndirectSelect },
    Call { callee: FuncId, indirect_with: Vec<FuncId> },
}

/// Deterministic synthetic program generator.
///
/// The same `(params, seed)` pair always produces the identical [`Cfg`], so
/// experiments are reproducible bit-for-bit.
///
/// ```
/// use sfetch_cfg::gen::{GenParams, ProgramGenerator};
///
/// let a = ProgramGenerator::new(GenParams::small(), 7).generate();
/// let b = ProgramGenerator::new(GenParams::small(), 7).generate();
/// assert_eq!(a.num_blocks(), b.num_blocks());
/// ```
#[derive(Debug)]
pub struct ProgramGenerator {
    params: GenParams,
    rng: SmallRng,
}

impl ProgramGenerator {
    /// Creates a generator for the given parameters and seed.
    pub fn new(params: GenParams, seed: u64) -> Self {
        ProgramGenerator { params, rng: SmallRng::seed_from_u64(seed) }
    }

    /// Generates the program.
    ///
    /// # Panics
    ///
    /// Panics if `params.n_funcs == 0` or the block budget range is empty —
    /// both indicate a configuration bug.
    pub fn generate(mut self) -> Cfg {
        assert!(self.params.n_funcs >= 1, "need at least one function");
        let (lo, hi) = self.params.blocks_per_func;
        assert!(lo >= 1 && hi >= lo, "invalid blocks_per_func range");

        let mut bld = CfgBuilder::new();
        let n = self.params.n_funcs;
        let funcs: Vec<FuncId> =
            (0..n).map(|i| bld.add_func(&format!("fn{i}"))).collect();

        // Call DAG: function i may call nearby higher-indexed functions, so
        // there is call-graph affinity for procedure placement to exploit and
        // no recursion.
        let mut callees: Vec<Vec<FuncId>> = vec![Vec::new(); n];
        #[allow(clippy::needless_range_loop)] // i indexes both callees and funcs[i + hop]
        for i in 0..n.saturating_sub(1) {
            let k = self.rng.random_range(1..=4usize);
            for _ in 0..k {
                let hop = 1 + sample_geometric(&mut self.rng, 0.45) as usize;
                let j = (i + hop).min(n - 1);
                if j > i {
                    callees[i].push(funcs[j]);
                }
            }
            callees[i].dedup();
        }

        for i in 0..n {
            let mut budget =
                self.rng.random_range(lo..=hi) as i64;
            let depth_allowed = self.params.max_depth;
            // Each function's top level is a sequence that consumes the whole
            // block budget. A single draw would leave most of the budget
            // unspent — and worse, a `Plain` draw for main would collapse the
            // program into one self-looping block spinning for 2^30
            // iterations, a degenerate instruction stream with no branches
            // for the front-ends to predict.
            let mut subs = Vec::new();
            while budget > 0 {
                subs.push(self.gen_region(0, depth_allowed, &mut budget, &callees[i]));
            }
            let body = if subs.len() == 1 {
                subs.pop().expect("one element")
            } else {
                Region::Seq(subs)
            };
            let tree = if i == 0 {
                // main: an effectively infinite outer loop so the simulated
                // instruction stream never ends.
                Region::Loop { body: Box::new(body), trip: TripCount::Fixed(1 << 30) }
            } else {
                body
            };
            let (head, exit) = self.lower(&mut bld, funcs[i], &tree);
            bld.set_entry(funcs[i], head);
            bld.set_return(exit);
        }
        bld.set_program_entry(funcs[0]);
        let cfg = bld.finish().expect("generator produced a structurally valid cfg");
        // Collapse the empty merge blocks the region lowering creates, so
        // layout never has to chain through zero-size blocks.
        crate::normalize::collapse_empty_blocks(&cfg)
    }

    fn gen_region(
        &mut self,
        depth: usize,
        max_depth: usize,
        budget: &mut i64,
        callees: &[FuncId],
    ) -> Region {
        if *budget <= 1 || depth >= max_depth {
            *budget -= 1;
            return Region::Plain;
        }
        let p = &self.params;
        let r: f64 = self.rng.random();
        let (p_loop, p_if, p_call, p_switch) = (p.p_loop, p.p_if, p.p_call, p.p_switch);
        if r < p_loop {
            *budget -= 2;
            let trip = self.sample_trip();
            // Loop bodies get at least a couple of regions so that hot inner
            // loops carry hammocks/calls instead of degenerating to a
            // single-block spin.
            let n = self.rng.random_range(2..=4usize);
            let mut subs = Vec::with_capacity(n);
            for _ in 0..n {
                subs.push(self.gen_region(depth + 1, max_depth, budget, callees));
            }
            let body = Box::new(Region::Seq(subs));
            Region::Loop { body, trip }
        } else if r < p_loop + p_if {
            *budget -= 2;
            let beh = self.sample_cond_behavior();
            if self.rng.random_bool(0.55) {
                let then_r = Box::new(self.gen_seq(depth + 1, max_depth, budget, callees));
                let else_r = Box::new(self.gen_seq(depth + 1, max_depth, budget, callees));
                Region::IfElse { then_r, else_r, beh }
            } else {
                let then_r = Box::new(self.gen_seq(depth + 1, max_depth, budget, callees));
                Region::If { then_r, beh }
            }
        } else if r < p_loop + p_if + p_call && !callees.is_empty() {
            *budget -= 2;
            let callee = callees[self.rng.random_range(0..callees.len())];
            let indirect_with = if self.rng.random_bool(p.indirect_call_frac) && callees.len() >= 2
            {
                let mut extra: Vec<FuncId> = callees
                    .iter()
                    .copied()
                    .filter(|&c| c != callee)
                    .take(3)
                    .collect();
                extra.truncate(self.rng.random_range(1..=extra.len().max(1)));
                extra
            } else {
                Vec::new()
            };
            Region::Call { callee, indirect_with }
        } else if r < p_loop + p_if + p_call + p_switch {
            let n_arms = self.rng.random_range(3..=6usize);
            *budget -= n_arms as i64;
            let mut arms = Vec::with_capacity(n_arms);
            for a in 0..n_arms {
                // Real switch dispatch is dominated by one or two hot arms.
                let w = match a {
                    0 => self.rng.random_range(120..=240u32),
                    1 => self.rng.random_range(10..=40u32),
                    _ => self.rng.random_range(1..=6u32),
                };
                arms.push((self.gen_seq(depth + 1, max_depth, budget, callees), w));
            }
            let select = if self.rng.random_bool(0.25) {
                IndirectSelect::Weighted
            } else {
                let len = self.rng.random_range(2..=8usize);
                IndirectSelect::Cyclic(
                    (0..len).map(|_| self.rng.random_range(0..n_arms as u16)).collect(),
                )
            };
            Region::Switch { arms, select }
        } else {
            *budget -= 1;
            Region::Plain
        }
    }

    fn gen_seq(
        &mut self,
        depth: usize,
        max_depth: usize,
        budget: &mut i64,
        callees: &[FuncId],
    ) -> Region {
        let n = self.rng.random_range(1..=3usize);
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.gen_region(depth, max_depth, budget, callees));
        }
        if v.len() == 1 {
            v.pop().expect("one element")
        } else {
            Region::Seq(v)
        }
    }

    fn sample_trip(&mut self) -> TripCount {
        // Trip counts are mostly large or data-dependent, as in loop-heavy
        // integer codes; tiny fixed trips (which only bounded-history
        // predictors can count) are the minority.
        let mean = self.params.mean_trip.max(4);
        match self.rng.random_range(0..4u8) {
            0 => TripCount::Fixed(self.rng.random_range(mean..=mean * 2)),
            1 => TripCount::Fixed(self.rng.random_range(2..=12)),
            2 => {
                let lo = self.rng.random_range(mean / 2..=mean);
                TripCount::Uniform { lo, hi: lo + self.rng.random_range(1..=mean) }
            }
            _ => TripCount::Geometric { mean: self.rng.random_range(mean / 2..=mean * 2) },
        }
    }

    fn sample_cond_behavior(&mut self) -> CondBehavior {
        let b = self.params.bias;
        let total = b.strong + b.moderate + b.balanced + b.pattern + b.correlated;
        let mut r: f64 = self.rng.random::<f64>() * total.max(1e-12);
        r -= b.strong;
        if r < 0.0 {
            let p = self.rng.random_range(0.01..0.06);
            let p = if self.rng.random_bool(0.5) { p } else { 1.0 - p };
            return CondBehavior::Bernoulli { p_taken: p };
        }
        r -= b.moderate;
        if r < 0.0 {
            let p = self.rng.random_range(0.85..0.97);
            let p = if self.rng.random_bool(0.5) { p } else { 1.0 - p };
            return CondBehavior::Bernoulli { p_taken: p };
        }
        r -= b.balanced;
        if r < 0.0 {
            return CondBehavior::Bernoulli { p_taken: self.rng.random_range(0.40..0.60) };
        }
        r -= b.pattern;
        if r < 0.0 {
            // A mix of short periods (any history predictor learns them)
            // and longer ones that only per-branch (local) history or
            // path-level context can phase-track.
            let len = if self.rng.random_bool(0.5) {
                self.rng.random_range(2..=5usize)
            } else {
                self.rng.random_range(6..=13usize)
            };
            let pat: Vec<bool> = (0..len).map(|_| self.rng.random_bool(0.5)).collect();
            return CondBehavior::Pattern(pat);
        }
        CondBehavior::Correlated {
            dist: self.rng.random_range(1..=10u8),
            invert: self.rng.random_bool(0.5),
            noise: self.rng.random_range(0.0..0.08),
        }
    }

    fn gen_body(&mut self, len: usize) -> Vec<StaticInst> {
        let p = self.params.clone();
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            let inst = if self.rng.random_bool(p.mem_frac) {
                let class = if self.rng.random_bool(p.load_frac) {
                    InstClass::Load
                } else {
                    InstClass::Store
                };
                let stride = *[4u32, 8, 8, 16, 64].get(self.rng.random_range(0..5usize)).expect("idx");
                let footprint = if self.rng.random_bool(p.cold_mem_frac) {
                    // Cold: walk a region bigger than L1D.
                    self.rng.random_range((256 << 10)..p.data_footprint.max(512 << 10))
                } else if self.rng.random_bool(0.17) {
                    // Warm: L1D-resident working set, multi-line.
                    self.rng.random_range(1024..(8 << 10))
                } else {
                    // Hot: a few lines.
                    self.rng.random_range(8..512)
                };
                let span = (footprint / u64::from(stride)).clamp(1, u32::MAX.into()) as u32;
                let base = DATA_BASE + self.rng.random_range(0..p.data_footprint);
                StaticInst::memory(class, MemPattern::new(Addr::new(base), stride, span), self.sample_dep())
            } else {
                let class = match self.rng.random_range(0..100u8) {
                    0..=7 => InstClass::IntMul,
                    8..=12 => InstClass::FpAlu,
                    _ => InstClass::IntAlu,
                };
                let d2 = if self.rng.random_bool(0.4) { self.sample_dep() } else { DepDistance::NONE };
                StaticInst::with_deps(class, self.sample_dep(), d2)
            };
            v.push(inst);
        }
        v
    }

    fn sample_dep(&mut self) -> DepDistance {
        let mean = self.params.mean_dep_dist.max(1.0);
        let d = 1 + sample_geometric(&mut self.rng, 1.0 / mean);
        DepDistance::new(d.min(32) as u8)
    }

    fn new_block(&mut self, bld: &mut CfgBuilder, f: FuncId) -> BlockId {
        let (lo, hi) = self.params.body_len;
        let len = self.rng.random_range(lo..=hi);
        let body = self.gen_body(len);
        bld.add_block_with(f, body)
    }

    /// Lowers a region tree; returns `(head, exit)` where `exit` is a block
    /// whose terminator the caller must set.
    fn lower(&mut self, bld: &mut CfgBuilder, f: FuncId, r: &Region) -> (BlockId, BlockId) {
        match r {
            Region::Plain => {
                let b = self.new_block(bld, f);
                (b, b)
            }
            Region::Seq(rs) => {
                let mut head = None;
                let mut prev_exit: Option<BlockId> = None;
                for sub in rs {
                    let (h, e) = self.lower(bld, f, sub);
                    if let Some(pe) = prev_exit {
                        bld.set_fallthrough(pe, h);
                    }
                    head.get_or_insert(h);
                    prev_exit = Some(e);
                }
                (head.expect("non-empty seq"), prev_exit.expect("non-empty seq"))
            }
            Region::If { then_r, beh } => {
                let cond_b = self.new_block(bld, f);
                let (h_t, e_t) = self.lower(bld, f, then_r);
                let merge = bld.add_block(f, 0);
                // Randomize the source-level orientation of the hammock, so
                // that the *natural* layout has ~50% of hot paths through
                // taken edges and the layout optimizer has work to do.
                if self.rng.random_bool(0.5) {
                    bld.set_cond(cond_b, h_t, merge, beh.clone());
                } else {
                    bld.set_cond(cond_b, merge, h_t, beh.clone());
                }
                bld.set_fallthrough(e_t, merge);
                (cond_b, merge)
            }
            Region::IfElse { then_r, else_r, beh } => {
                let cond_b = self.new_block(bld, f);
                let (h_t, e_t) = self.lower(bld, f, then_r);
                let (h_e, e_e) = self.lower(bld, f, else_r);
                let merge = bld.add_block(f, 0);
                if self.rng.random_bool(0.5) {
                    bld.set_cond(cond_b, h_t, h_e, beh.clone());
                } else {
                    bld.set_cond(cond_b, h_e, h_t, beh.clone());
                }
                bld.set_fallthrough(e_t, merge);
                bld.set_fallthrough(e_e, merge);
                (cond_b, merge)
            }
            Region::Loop { body, trip } => {
                let (h_b, e_b) = self.lower(bld, f, body);
                let exit = bld.add_block(f, 0);
                // The latch: logical-taken edge is the back-edge.
                bld.set_cond(e_b, h_b, exit, CondBehavior::Loop { trip: *trip });
                (h_b, exit)
            }
            Region::Switch { arms, select } => {
                let sw_b = self.new_block(bld, f);
                let merge = bld.add_block(f, 0);
                let mut targets = Vec::with_capacity(arms.len());
                for (arm, w) in arms {
                    let (h, e) = self.lower(bld, f, arm);
                    bld.set_fallthrough(e, merge);
                    targets.push((h, *w));
                }
                bld.set_indirect_jump(sw_b, targets, select.clone());
                (sw_b, merge)
            }
            Region::Call { callee, indirect_with } => {
                let call_b = self.new_block(bld, f);
                let ret_b = bld.add_block(f, 0);
                if indirect_with.is_empty() {
                    bld.set_call(call_b, *callee, ret_b);
                } else {
                    let mut cs = vec![(*callee, 60u32)];
                    for (i, &c) in indirect_with.iter().enumerate() {
                        cs.push((c, 20 / (i as u32 + 1)));
                    }
                    let select = if self.rng.random_bool(0.5) {
                        IndirectSelect::Weighted
                    } else {
                        let len = self.rng.random_range(2..=6usize);
                        let n = cs.len() as u16;
                        IndirectSelect::Cyclic(
                            (0..len).map(|_| self.rng.random_range(0..n)).collect(),
                        )
                    };
                    bld.set_indirect_call(call_b, cs, ret_b, select);
                }
                (call_b, ret_b)
            }
        }
    }
}

/// Samples a geometric-like variate with success probability `p` (mean ≈
/// `(1-p)/p`), capped to keep pathological tails out.
fn sample_geometric(rng: &mut SmallRng, p: f64) -> u32 {
    let p = p.clamp(1e-6, 1.0 - 1e-9);
    let u: f64 = rng.random();
    let v = (u.ln() / (1.0 - p).ln()).floor();
    (v as u32).min(1000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Terminator;

    #[test]
    fn generation_is_deterministic() {
        let a = ProgramGenerator::new(GenParams::small(), 123).generate();
        let b = ProgramGenerator::new(GenParams::small(), 123).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = ProgramGenerator::new(GenParams::small(), 1).generate();
        let b = ProgramGenerator::new(GenParams::small(), 2).generate();
        assert_ne!(a, b);
    }

    #[test]
    fn respects_function_count() {
        let cfg = ProgramGenerator::new(GenParams::small(), 5).generate();
        assert_eq!(cfg.num_funcs(), GenParams::small().n_funcs);
        for f in cfg.funcs() {
            assert!(!f.blocks().is_empty());
        }
    }

    #[test]
    fn main_is_wrapped_in_effectively_infinite_loop() {
        let cfg = ProgramGenerator::new(GenParams::small(), 5).generate();
        let has_huge_loop = cfg.blocks().iter().any(|b| {
            matches!(
                b.terminator(),
                Terminator::Cond {
                    behavior: CondBehavior::Loop { trip: TripCount::Fixed(n) },
                    ..
                } if *n >= 1 << 30
            )
        });
        assert!(has_huge_loop, "main must loop forever");
    }

    #[test]
    fn block_sizes_within_configured_range() {
        let p = GenParams::small();
        let cfg = ProgramGenerator::new(p.clone(), 9).generate();
        for b in cfg.blocks() {
            assert!(b.body().len() <= p.body_len.1, "body too long: {}", b.body().len());
        }
    }

    #[test]
    fn calls_never_recurse_backwards() {
        // Call DAG property: callee id > caller id, so no recursion.
        let cfg = ProgramGenerator::new(GenParams::default_int(), 11).generate();
        for b in cfg.blocks() {
            match b.terminator() {
                Terminator::Call { callee, .. } => {
                    assert!(callee.index() > b.func().index());
                }
                Terminator::IndirectCall { callees, .. } => {
                    for &(c, _) in callees {
                        assert!(c.index() > b.func().index());
                    }
                }
                _ => {}
            }
        }
    }

    #[test]
    fn geometric_sampler_is_bounded_and_small_mean() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut acc = 0u64;
        for _ in 0..10_000 {
            let v = sample_geometric(&mut rng, 0.5);
            assert!(v <= 1000);
            acc += u64::from(v);
        }
        let mean = acc as f64 / 10_000.0;
        assert!(mean > 0.5 && mean < 2.0, "mean {mean} out of expected range");
    }

    #[test]
    fn bodies_contain_memory_ops() {
        let cfg = ProgramGenerator::new(GenParams::default_int(), 21).generate();
        let mem = cfg
            .blocks()
            .iter()
            .flat_map(|b| b.body())
            .filter(|i| i.mem_pattern().is_some())
            .count();
        let total: usize = cfg.blocks().iter().map(|b| b.body().len()).sum();
        let frac = mem as f64 / total.max(1) as f64;
        assert!(frac > 0.2 && frac < 0.5, "memory fraction {frac} should be near 0.35");
    }
}
