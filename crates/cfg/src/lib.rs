//! # sfetch-cfg
//!
//! The static program model of the `stream-fetch` simulator: control-flow
//! graphs, branch-behaviour models, a synthetic program generator, profile
//! data, code-layout passes, and the [`CodeImage`] — the *static basic block
//! dictionary* the paper's trace-driven simulator uses to fetch down wrong
//! paths (§4.1).
//!
//! The paper evaluates its front-end on SPECint2000 binaries in two flavours:
//! a *baseline* layout and a *layout-optimized* one (produced by the `spike`
//! tool, a Pettis–Hansen style profile-guided reorderer). This crate supplies
//! the same two flavours for synthetic programs:
//!
//! 1. build or generate a [`Cfg`] ([`CfgBuilder`], [`gen::ProgramGenerator`]),
//! 2. obtain an [`EdgeProfile`] (the `sfetch-trace` crate runs the program),
//! 3. choose a [`layout::Layout`] — [`layout::natural`] (source order, the
//!    baseline) or [`layout::pettis_hansen`] (the optimized layout),
//! 4. materialize a [`CodeImage`]: concrete instruction addresses, branch
//!    senses flipped so hot successors fall through, and fix-up jumps where
//!    a block's successor could not be made adjacent.
//!
//! The image is what fetch engines and the architectural executor both walk,
//! so speculative (wrong-path) fetch sees exactly the bytes a real binary
//! would provide.
//!
//! ```
//! use sfetch_cfg::{gen::{GenParams, ProgramGenerator}, layout, CodeImage};
//!
//! let cfg = ProgramGenerator::new(GenParams::small(), 42).generate();
//! let lay = layout::natural(&cfg);
//! let image = CodeImage::build(&cfg, &lay);
//! assert!(image.len_insts() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod behavior;
pub mod builder;
pub mod control;
pub mod gen;
pub mod graph;
pub mod image;
pub mod layout;
pub mod normalize;
pub mod profile;

pub use behavior::{CondBehavior, IndirectSelect, TripCount};
pub use builder::CfgBuilder;
pub use control::{CondCtl, ControlTable, IndirectCtl};
pub use graph::{BasicBlock, BlockId, Cfg, FuncId, Function, Terminator};
pub use image::{CodeImage, ControlAttr, ImageInst};
pub use layout::{Layout, LayoutKind};
pub use profile::EdgeProfile;
