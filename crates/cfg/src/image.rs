//! The materialized program image — the paper's *static basic block
//! dictionary* (§4.1).
//!
//! Given a [`Cfg`] and a [`Layout`], [`CodeImage::build`] assigns concrete
//! instruction addresses and performs the three mechanical layout fix-ups a
//! real linker/optimizer performs:
//!
//! * **branch-sense flipping** — if a conditional's *taken* successor was
//!   placed adjacent, the condition is inverted so that successor becomes
//!   the fall-through (this is how layout turns hot paths into not-taken
//!   branches);
//! * **fix-up jumps** — when a block's fall-through successor is not
//!   adjacent, an unconditional jump is appended;
//! * **jump elision** — explicit jumps to the physically next instruction
//!   are removed.
//!
//! The image supports address-indexed instruction lookup anywhere in the
//! code segment, which is what lets fetch engines run down *wrong paths*
//! (polluting caches and speculative histories) exactly as the paper's
//! simulator does.

use std::fmt;

use sfetch_isa::{Addr, BranchKind, StaticInst, INST_BYTES};

use crate::control::ControlTable;
use crate::graph::{BlockId, Cfg, Terminator};
use crate::layout::Layout;

/// Default base address of the code segment.
pub const CODE_BASE: u64 = 0x0040_0000;

/// Control-transfer metadata attached to a branch instruction slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControlAttr {
    /// Branch kind of the materialized instruction.
    pub kind: BranchKind,
    /// Static target address (`None` for returns/indirects, whose targets
    /// are data-dependent).
    pub target: Option<Addr>,
    /// Address of the next sequential instruction.
    pub fallthrough: Addr,
    /// Block whose terminator this instruction realizes.
    pub owner: BlockId,
    /// For conditionals: the branch sense was inverted by layout, i.e. the
    /// *logical taken* edge is reached by falling through.
    pub flipped: bool,
    /// This is a layout-inserted fix-up jump, not a CFG terminator.
    pub is_fixup: bool,
}

/// One instruction slot of the image.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImageInst {
    /// The static instruction occupying the slot.
    pub inst: StaticInst,
    /// Control metadata if the slot is a branch.
    pub control: Option<ControlAttr>,
}

/// A program laid out in memory: every instruction at a concrete address.
#[derive(Debug, Clone)]
pub struct CodeImage {
    base: Addr,
    insts: Vec<ImageInst>,
    owners: Vec<BlockId>,
    block_addr: Vec<Addr>,
    entry: Addr,
    n_fixups: usize,
    n_elided: usize,
    control: ControlTable,
}

impl CodeImage {
    /// Builds the image for `cfg` under `layout` at the default
    /// [`CODE_BASE`].
    pub fn build(cfg: &Cfg, layout: &Layout) -> Self {
        Self::build_at(cfg, layout, Addr::new(CODE_BASE))
    }

    /// Builds the image at an explicit base address.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not instruction-aligned or the layout does not
    /// cover the program (both are programming errors).
    pub fn build_at(cfg: &Cfg, layout: &Layout, base: Addr) -> Self {
        assert!(base.is_inst_aligned(), "image base must be aligned");
        let order = layout.order();
        assert_eq!(order.len(), cfg.num_blocks(), "layout must place every block");

        let next_of = |i: usize| -> Option<BlockId> { order.get(i + 1).copied() };

        // Pass 1: sizes. For each placed block decide terminator shape.
        #[derive(Clone, Copy)]
        enum TermShape {
            None,                       // fallthrough to adjacent / elided jump
            Branch { fixup: bool },     // terminator instruction (+ optional fix-up jump)
            FixupOnly,                  // fallthrough needs a jump
        }
        let mut shapes = Vec::with_capacity(order.len());
        let mut sizes = Vec::with_capacity(order.len());
        for (i, &b) in order.iter().enumerate() {
            let blk = cfg.block(b);
            let next = next_of(i);
            let shape = match blk.terminator() {
                Terminator::FallThrough { next: t } => {
                    if next == Some(*t) {
                        TermShape::None
                    } else {
                        TermShape::FixupOnly
                    }
                }
                Terminator::Jump { target } => {
                    if next == Some(*target) {
                        TermShape::None // elided
                    } else {
                        TermShape::Branch { fixup: false }
                    }
                }
                Terminator::Cond { taken, not_taken, .. } => {
                    let adj_nt = next == Some(*not_taken);
                    let adj_t = next == Some(*taken);
                    TermShape::Branch { fixup: !adj_nt && !adj_t }
                }
                Terminator::Call { ret_to, .. } | Terminator::IndirectCall { ret_to, .. } => {
                    TermShape::Branch { fixup: next != Some(*ret_to) }
                }
                Terminator::Return | Terminator::IndirectJump { .. } => {
                    TermShape::Branch { fixup: false }
                }
            };
            let extra = match shape {
                TermShape::None => 0,
                TermShape::FixupOnly => 1,
                TermShape::Branch { fixup } => 1 + usize::from(fixup),
            };
            shapes.push(shape);
            sizes.push(blk.body().len() + extra);
        }

        // Pass 2: addresses.
        let mut block_addr = vec![Addr::NULL; cfg.num_blocks()];
        let mut cur = base;
        for (i, &b) in order.iter().enumerate() {
            block_addr[b.index()] = cur;
            cur = cur.offset_insts(sizes[i] as u64);
        }

        // Pass 3: emit.
        let mut insts: Vec<ImageInst> = Vec::with_capacity((cur - base) as usize / 4);
        let mut owners: Vec<BlockId> = Vec::with_capacity(insts.capacity());
        let mut n_fixups = 0;
        let mut n_elided = 0;
        let mut pc = base;
        for (i, &b) in order.iter().enumerate() {
            let blk = cfg.block(b);
            debug_assert_eq!(pc, block_addr[b.index()]);
            for &inst in blk.body() {
                insts.push(ImageInst { inst, control: None });
                pc = pc.next_inst();
            }
            let addr_of = |t: BlockId| block_addr[t.index()];
            let mut push_fixup = |insts: &mut Vec<ImageInst>, pc: &mut Addr, to: BlockId| {
                insts.push(ImageInst {
                    inst: StaticInst::branch(BranchKind::Jump),
                    control: Some(ControlAttr {
                        kind: BranchKind::Jump,
                        target: Some(addr_of(to)),
                        fallthrough: pc.next_inst(),
                        owner: b,
                        flipped: false,
                        is_fixup: true,
                    }),
                });
                *pc = pc.next_inst();
                n_fixups += 1;
            };
            match (blk.terminator(), shapes[i]) {
                (Terminator::FallThrough { .. }, TermShape::None) => {}
                (Terminator::FallThrough { next: t }, TermShape::FixupOnly) => {
                    push_fixup(&mut insts, &mut pc, *t);
                }
                (Terminator::Jump { .. }, TermShape::None) => {
                    n_elided += 1;
                }
                (Terminator::Jump { target }, TermShape::Branch { .. }) => {
                    insts.push(ImageInst {
                        inst: StaticInst::branch(BranchKind::Jump),
                        control: Some(ControlAttr {
                            kind: BranchKind::Jump,
                            target: Some(addr_of(*target)),
                            fallthrough: pc.next_inst(),
                            owner: b,
                            flipped: false,
                            is_fixup: false,
                        }),
                    });
                    pc = pc.next_inst();
                }
                (Terminator::Cond { taken, not_taken, .. }, TermShape::Branch { fixup }) => {
                    let next = next_of(i);
                    // flipped: the logical-taken successor is adjacent, so
                    // layout inverted the condition.
                    let flipped = next == Some(*taken) && next != Some(*not_taken);
                    let branch_target = if flipped { addr_of(*not_taken) } else { addr_of(*taken) };
                    insts.push(ImageInst {
                        inst: StaticInst::branch(BranchKind::Cond),
                        control: Some(ControlAttr {
                            kind: BranchKind::Cond,
                            target: Some(branch_target),
                            fallthrough: pc.next_inst(),
                            owner: b,
                            flipped,
                            is_fixup: false,
                        }),
                    });
                    pc = pc.next_inst();
                    if fixup {
                        // Neither successor adjacent: branch goes to `taken`,
                        // fall-through lands on a jump to `not_taken`.
                        push_fixup(&mut insts, &mut pc, *not_taken);
                    }
                }
                (Terminator::Call { callee, ret_to }, TermShape::Branch { fixup }) => {
                    let entry = cfg.func(*callee).entry();
                    insts.push(ImageInst {
                        inst: StaticInst::branch(BranchKind::Call),
                        control: Some(ControlAttr {
                            kind: BranchKind::Call,
                            target: Some(addr_of(entry)),
                            fallthrough: pc.next_inst(),
                            owner: b,
                            flipped: false,
                            is_fixup: false,
                        }),
                    });
                    pc = pc.next_inst();
                    if fixup {
                        push_fixup(&mut insts, &mut pc, *ret_to);
                    }
                }
                (Terminator::IndirectCall { ret_to, .. }, TermShape::Branch { fixup }) => {
                    insts.push(ImageInst {
                        inst: StaticInst::branch(BranchKind::IndirectCall),
                        control: Some(ControlAttr {
                            kind: BranchKind::IndirectCall,
                            target: None,
                            fallthrough: pc.next_inst(),
                            owner: b,
                            flipped: false,
                            is_fixup: false,
                        }),
                    });
                    pc = pc.next_inst();
                    if fixup {
                        push_fixup(&mut insts, &mut pc, *ret_to);
                    }
                }
                (Terminator::Return, TermShape::Branch { .. }) => {
                    insts.push(ImageInst {
                        inst: StaticInst::branch(BranchKind::Return),
                        control: Some(ControlAttr {
                            kind: BranchKind::Return,
                            target: None,
                            fallthrough: pc.next_inst(),
                            owner: b,
                            flipped: false,
                            is_fixup: false,
                        }),
                    });
                    pc = pc.next_inst();
                }
                (Terminator::IndirectJump { .. }, TermShape::Branch { .. }) => {
                    insts.push(ImageInst {
                        inst: StaticInst::branch(BranchKind::IndirectJump),
                        control: Some(ControlAttr {
                            kind: BranchKind::IndirectJump,
                            target: None,
                            fallthrough: pc.next_inst(),
                            owner: b,
                            flipped: false,
                            is_fixup: false,
                        }),
                    });
                    pc = pc.next_inst();
                }
                (t, _) => unreachable!("inconsistent terminator shape for {t:?}"),
            }
            owners.resize(insts.len(), b);
        }
        debug_assert_eq!(pc, cur);

        let entry = block_addr[cfg.entry_block().index()];
        let control = ControlTable::build(cfg, &block_addr);
        CodeImage { base, insts, owners, block_addr, entry, n_fixups, n_elided, control }
    }

    /// Base address of the code segment.
    #[inline]
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Address of the program entry point.
    #[inline]
    pub fn entry(&self) -> Addr {
        self.entry
    }

    /// Total instructions in the image.
    #[inline]
    pub fn len_insts(&self) -> usize {
        self.insts.len()
    }

    /// Code segment size in bytes.
    #[inline]
    pub fn code_bytes(&self) -> u64 {
        self.insts.len() as u64 * INST_BYTES
    }

    /// One-past-the-end address.
    #[inline]
    pub fn end(&self) -> Addr {
        self.base.offset_insts(self.insts.len() as u64)
    }

    /// Start address of a block.
    ///
    /// Note that an empty fall-through block shares its address with the
    /// following block.
    #[inline]
    pub fn block_addr(&self, b: BlockId) -> Addr {
        self.block_addr[b.index()]
    }

    /// Index of the instruction slot at `addr`, if inside the image.
    #[inline]
    pub fn slot_of(&self, addr: Addr) -> Option<usize> {
        if addr < self.base || !addr.is_inst_aligned() {
            return None;
        }
        let idx = ((addr - self.base) / INST_BYTES) as usize;
        (idx < self.insts.len()).then_some(idx)
    }

    /// The instruction at `addr`, if inside the image. Fetch engines running
    /// down a wrong path may ask for addresses outside the image; callers
    /// treat `None` as a no-op slot.
    #[inline]
    pub fn inst_at(&self, addr: Addr) -> Option<&ImageInst> {
        self.slot_of(addr).map(|i| &self.insts[i])
    }

    /// The instruction at slot `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[inline]
    pub fn inst(&self, idx: usize) -> &ImageInst {
        &self.insts[idx]
    }

    /// Block owning the instruction slot at `addr`, if inside the image.
    #[inline]
    pub fn owner_at(&self, addr: Addr) -> Option<BlockId> {
        self.slot_of(addr).map(|i| self.owners[i])
    }

    /// Block owning instruction slot `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[inline]
    pub fn owner(&self, idx: usize) -> BlockId {
        self.owners[idx]
    }

    /// The flattened control side-table: per-block branch behaviour with all
    /// payloads interned and indirect targets pre-resolved to addresses. The
    /// architectural executor resolves dynamic control through this instead
    /// of re-matching CFG terminators (and cloning their payloads) per step.
    #[inline]
    pub fn control(&self) -> &ControlTable {
        &self.control
    }

    /// Number of fix-up jumps the layout inserted.
    #[inline]
    pub fn fixup_jumps(&self) -> usize {
        self.n_fixups
    }

    /// Number of CFG jumps elided by adjacency.
    #[inline]
    pub fn elided_jumps(&self) -> usize {
        self.n_elided
    }

    /// Iterates over `(addr, inst)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Addr, &ImageInst)> {
        self.insts.iter().enumerate().map(move |(i, inst)| (self.base.offset_insts(i as u64), inst))
    }
}

impl fmt::Display for CodeImage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "code image: {} insts ({} bytes) at {}, {} fixups, {} elided jumps",
            self.len_insts(),
            self.code_bytes(),
            self.base,
            self.n_fixups,
            self.n_elided
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CfgBuilder;
    use crate::layout::{natural, pettis_hansen};
    use crate::profile::EdgeProfile;
    use crate::CondBehavior;

    /// a --cond(p=.9 taken)--> hot | cold ; both -> exit(ret)
    /// created order: a, cold, hot, exit (cold adjacent in natural layout).
    fn hammock() -> (Cfg, BlockId, BlockId, BlockId, BlockId) {
        let mut bld = CfgBuilder::new();
        let f = bld.add_func("main");
        let a = bld.add_block(f, 2);
        let cold = bld.add_block(f, 2);
        let hot = bld.add_block(f, 2);
        let exit = bld.add_block(f, 1);
        bld.set_cond(a, hot, cold, CondBehavior::Bernoulli { p_taken: 0.9 });
        bld.set_fallthrough(cold, exit);
        bld.set_fallthrough(hot, exit);
        bld.set_return(exit);
        (bld.finish().expect("valid"), a, cold, hot, exit)
    }
    use crate::graph::Cfg;

    #[test]
    fn natural_layout_keeps_branch_sense() {
        let (cfg, a, cold, hot, _exit) = hammock();
        let img = CodeImage::build(&cfg, &natural(&cfg));
        // a = 2 body + cond at slot 2.
        let battr = img.inst(2).control.expect("cond branch");
        assert_eq!(battr.kind, BranchKind::Cond);
        assert!(!battr.flipped, "cold (not_taken) is adjacent; no flip");
        assert_eq!(battr.target, Some(img.block_addr(hot)));
        assert_eq!(battr.fallthrough, img.block_addr(cold));
        assert_eq!(battr.owner, a);
    }

    #[test]
    fn optimized_layout_flips_branch_so_hot_falls_through() {
        let (cfg, _a, _cold, hot, _exit) = hammock();
        let prof = EdgeProfile::from_expected(&cfg);
        let img = CodeImage::build(&cfg, &pettis_hansen(&cfg, &prof));
        let battr = img.inst(2).control.expect("cond branch");
        assert!(battr.flipped, "hot successor adjacent => condition inverted");
        assert_eq!(battr.fallthrough, img.block_addr(hot));
    }

    #[test]
    fn fixup_jumps_reconnect_nonadjacent_fallthroughs() {
        let (cfg, ..) = hammock();
        // natural: a,cold,hot,exit. hot's fallthrough = exit, adjacent ✓;
        // cold's fallthrough = exit, NOT adjacent (hot in between) -> fixup.
        let img = CodeImage::build(&cfg, &natural(&cfg));
        assert_eq!(img.fixup_jumps(), 1);
        // cold occupies slots 3,4 then fixup at slot 5.
        let fix = img.inst(5).control.expect("fixup jump");
        assert!(fix.is_fixup);
        assert_eq!(fix.kind, BranchKind::Jump);
    }

    #[test]
    fn jump_elision() {
        let mut bld = CfgBuilder::new();
        let f = bld.add_func("main");
        let a = bld.add_block(f, 1);
        let b = bld.add_block(f, 1);
        bld.set_jump(a, b); // adjacent -> elided
        bld.set_return(b);
        let cfg = bld.finish().expect("valid");
        let img = CodeImage::build(&cfg, &natural(&cfg));
        assert_eq!(img.elided_jumps(), 1);
        assert_eq!(img.len_insts(), 3, "1 body + 1 body + ret");
    }

    #[test]
    fn addresses_are_contiguous_and_lookup_works() {
        let (cfg, ..) = hammock();
        let img = CodeImage::build(&cfg, &natural(&cfg));
        for (addr, inst) in img.iter() {
            assert_eq!(img.inst_at(addr).expect("in range"), inst);
        }
        assert_eq!(img.inst_at(img.end()), None);
        assert_eq!(img.inst_at(Addr::new(0)), None);
        assert_eq!(img.inst_at(img.base() + 2), None, "misaligned lookup");
        assert_eq!(img.entry(), img.base());
    }

    #[test]
    fn call_gets_fixup_when_return_point_not_adjacent() {
        let mut bld = CfgBuilder::new();
        let main = bld.add_func("main");
        let leaf = bld.add_func("leaf");
        let c = bld.add_block(main, 1);
        let far = bld.add_block(main, 1); // sits between call and ret point
        let ret_pt = bld.add_block(main, 1);
        let l0 = bld.add_block(leaf, 1);
        bld.set_call(c, leaf, ret_pt);
        bld.set_return(far);
        bld.set_return(ret_pt);
        bld.set_return(l0);
        let cfg = bld.finish().expect("valid");
        let img = CodeImage::build(&cfg, &natural(&cfg));
        assert_eq!(img.fixup_jumps(), 1);
        // call at slot 1, fixup at slot 2 targeting ret_pt.
        let fix = img.inst(2).control.expect("fixup");
        assert!(fix.is_fixup);
        assert_eq!(fix.target, Some(img.block_addr(ret_pt)));
        // call target is leaf entry.
        let call = img.inst(1).control.expect("call");
        assert_eq!(call.target, Some(img.block_addr(l0)));
    }

    #[test]
    fn cond_with_no_adjacent_successor_gets_branch_plus_fixup() {
        let mut bld = CfgBuilder::new();
        let f = bld.add_func("main");
        let a = bld.add_block(f, 1);
        let pad = bld.add_block(f, 1);
        let t = bld.add_block(f, 1);
        let nt = bld.add_block(f, 1);
        bld.set_cond(a, t, nt, CondBehavior::Bernoulli { p_taken: 0.5 });
        bld.set_return(pad);
        bld.set_return(t);
        bld.set_return(nt);
        let cfg = bld.finish().expect("valid");
        let img = CodeImage::build(&cfg, &natural(&cfg));
        // a: body(1) + cond + fixup -> pad starts at slot 3.
        let br = img.inst(1).control.expect("cond");
        assert_eq!(br.target, Some(img.block_addr(t)));
        assert!(!br.flipped);
        let fix = img.inst(2).control.expect("fixup");
        assert_eq!(fix.target, Some(img.block_addr(nt)));
        assert_eq!(img.block_addr(pad), img.base().offset_insts(3));
    }

    #[test]
    fn empty_fallthrough_blocks_are_zero_size() {
        let mut bld = CfgBuilder::new();
        let f = bld.add_func("main");
        let a = bld.add_block(f, 1);
        let empty = bld.add_block(f, 0);
        let b = bld.add_block(f, 1);
        bld.set_fallthrough(a, empty);
        bld.set_fallthrough(empty, b);
        bld.set_return(b);
        let cfg = bld.finish().expect("valid");
        let img = CodeImage::build(&cfg, &natural(&cfg));
        assert_eq!(img.block_addr(empty), img.block_addr(b));
        assert_eq!(img.len_insts(), 3);
        assert_eq!(img.fixup_jumps(), 0);
    }
}
