//! Edge profiles: the input to profile-guided code layout.
//!
//! The paper obtains profiles with `pixie` on the *train* input and lays out
//! with `spike`, then measures on the *ref* input. Our equivalent: the
//! `sfetch-trace` crate executes the program with a *training seed* and fills
//! an [`EdgeProfile`]; the evaluation run uses a different seed.

use sfetch_tab::OpenMap;

use crate::behavior::CondBehavior;
use crate::graph::{BlockId, Cfg, FuncId, Terminator};

/// Execution-frequency profile of a [`Cfg`]: block counts, intra-procedural
/// edge counts and call-graph edge counts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EdgeProfile {
    // Open-addressed: `count_*` land once per executed block/edge/call
    // on the training walk, making these the profile pass's hot maps.
    block: OpenMap<BlockId, u64>,
    edge: OpenMap<(BlockId, BlockId), u64>,
    call: OpenMap<(FuncId, FuncId), u64>,
}

impl EdgeProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one execution of `b`.
    pub fn count_block(&mut self, b: BlockId) {
        *self.block.entry_or_insert(b, 0) += 1;
    }

    /// Records one traversal of the intra-procedural edge `from -> to`.
    pub fn count_edge(&mut self, from: BlockId, to: BlockId) {
        *self.edge.entry_or_insert((from, to), 0) += 1;
    }

    /// Records one dynamic call `caller -> callee`.
    pub fn count_call(&mut self, caller: FuncId, callee: FuncId) {
        *self.call.entry_or_insert((caller, callee), 0) += 1;
    }

    /// Times `b` executed.
    pub fn block_count(&self, b: BlockId) -> u64 {
        self.block.get(&b).copied().unwrap_or(0)
    }

    /// Times the edge `from -> to` was traversed.
    pub fn edge_count(&self, from: BlockId, to: BlockId) -> u64 {
        self.edge.get(&(from, to)).copied().unwrap_or(0)
    }

    /// Times `caller` called `callee`.
    pub fn call_count(&self, caller: FuncId, callee: FuncId) -> u64 {
        self.call.get(&(caller, callee)).copied().unwrap_or(0)
    }

    /// All recorded intra-procedural edges with counts.
    pub fn edges(&self) -> impl Iterator<Item = (BlockId, BlockId, u64)> + '_ {
        self.edge.iter().map(|(&(a, b), &w)| (a, b, w))
    }

    /// All recorded call edges with counts.
    pub fn calls(&self) -> impl Iterator<Item = (FuncId, FuncId, u64)> + '_ {
        self.call.iter().map(|(&(a, b), &w)| (a, b, w))
    }

    /// A cheap *static* profile estimate derived from the branch behaviour
    /// models (no execution), via bounded value iteration.
    ///
    /// Useful for tests and for layout "heuristics instead of profile data"
    /// experiments (the paper's §2.4 notes real users often skip profiling —
    /// Ball–Larus-style estimation fills in).
    pub fn from_expected(cfg: &Cfg) -> Self {
        const ITERS: usize = 25;
        const LOOP_GAIN: f64 = 8.0; // assumed mean trips when unknown
        let n = cfg.num_blocks();
        let mut w = vec![0.0f64; n];
        // Seed every function entry so even cold functions get an ordering.
        for f in cfg.funcs() {
            w[f.entry().index()] = if f.id() == cfg.entry() { 1000.0 } else { 1.0 };
        }
        let mut edge_acc: OpenMap<(BlockId, BlockId), f64> = OpenMap::new();
        let mut call_acc: OpenMap<(FuncId, FuncId), f64> = OpenMap::new();
        let mut block_acc = vec![0.0f64; n];
        for _ in 0..ITERS {
            let mut next = vec![0.0f64; n];
            for blk in cfg.blocks() {
                let src = w[blk.id().index()];
                if src <= 0.0 {
                    continue;
                }
                block_acc[blk.id().index()] += src;
                let push = |to: BlockId, amount: f64,
                                edge_acc: &mut OpenMap<(BlockId, BlockId), f64>,
                                next: &mut Vec<f64>| {
                    *edge_acc.entry_or_insert((blk.id(), to), 0.0) += amount;
                    next[to.index()] += amount;
                };
                match blk.terminator() {
                    Terminator::FallThrough { next: t } | Terminator::Jump { target: t } => {
                        push(*t, src, &mut edge_acc, &mut next);
                    }
                    Terminator::Cond { taken, not_taken, behavior } => {
                        let p = behavior.expected_p_taken();
                        let p = if matches!(behavior, CondBehavior::Loop { .. }) {
                            // Back-edges multiply flow; cap the gain.
                            1.0 - 1.0 / LOOP_GAIN
                        } else {
                            p
                        };
                        push(*taken, src * p, &mut edge_acc, &mut next);
                        push(*not_taken, src * (1.0 - p), &mut edge_acc, &mut next);
                    }
                    Terminator::Call { callee, ret_to } => {
                        *call_acc.entry_or_insert((blk.func(), *callee), 0.0) += src;
                        push(*ret_to, src, &mut edge_acc, &mut next);
                    }
                    Terminator::IndirectCall { callees, ret_to, .. } => {
                        let total: u64 = callees.iter().map(|&(_, w)| u64::from(w)).sum();
                        for &(c, cw) in callees {
                            let frac = f64::from(cw) / total.max(1) as f64;
                            *call_acc.entry_or_insert((blk.func(), c), 0.0) += src * frac;
                        }
                        push(*ret_to, src, &mut edge_acc, &mut next);
                    }
                    Terminator::Return => {}
                    Terminator::IndirectJump { targets, .. } => {
                        let total: u64 = targets.iter().map(|&(_, w)| u64::from(w)).sum();
                        for &(t, tw) in targets {
                            let frac = f64::from(tw) / total.max(1) as f64;
                            push(t, src * frac, &mut edge_acc, &mut next);
                        }
                    }
                }
            }
            // Damp to convergence; re-seed entries a little to keep cold
            // functions ranked.
            for f in cfg.funcs() {
                next[f.entry().index()] += 0.01;
            }
            w = next;
        }
        let mut p = EdgeProfile::new();
        for (i, &acc) in block_acc.iter().enumerate() {
            if acc > 0.0 {
                p.block.insert(BlockId::from_index(i), (acc * 100.0) as u64);
            }
        }
        for (&(a, b), &acc) in edge_acc.iter() {
            if acc > 0.0 {
                p.edge.insert((a, b), (acc * 100.0) as u64 + 1);
            }
        }
        for (&(a, b), &acc) in call_acc.iter() {
            if acc > 0.0 {
                p.call.insert((a, b), (acc * 100.0) as u64 + 1);
            }
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CfgBuilder;
    use crate::{CondBehavior, TripCount};

    #[test]
    fn counting_accumulates() {
        let mut p = EdgeProfile::new();
        let a = BlockId::from_index(0);
        let b = BlockId::from_index(1);
        p.count_block(a);
        p.count_block(a);
        p.count_edge(a, b);
        p.count_call(FuncId::from_index(0), FuncId::from_index(1));
        assert_eq!(p.block_count(a), 2);
        assert_eq!(p.edge_count(a, b), 1);
        assert_eq!(p.edge_count(b, a), 0);
        assert_eq!(p.call_count(FuncId::from_index(0), FuncId::from_index(1)), 1);
        assert_eq!(p.edges().count(), 1);
        assert_eq!(p.calls().count(), 1);
    }

    #[test]
    fn expected_profile_prefers_hot_edge() {
        // cond with p_taken = 0.9: taken edge should out-weigh not-taken.
        let mut bld = CfgBuilder::new();
        let f = bld.add_func("main");
        let a = bld.add_block(f, 1);
        let hot = bld.add_block(f, 1);
        let cold = bld.add_block(f, 1);
        let exit = bld.add_block(f, 1);
        bld.set_cond(a, hot, cold, CondBehavior::Bernoulli { p_taken: 0.9 });
        bld.set_fallthrough(hot, exit);
        bld.set_fallthrough(cold, exit);
        bld.set_return(exit);
        let cfg = bld.finish().expect("valid");
        let p = EdgeProfile::from_expected(&cfg);
        assert!(p.edge_count(a, hot) > p.edge_count(a, cold));
    }

    #[test]
    fn expected_profile_amplifies_loops() {
        let mut bld = CfgBuilder::new();
        let f = bld.add_func("main");
        let pre = bld.add_block(f, 1);
        let body = bld.add_block(f, 1);
        let exit = bld.add_block(f, 1);
        bld.set_fallthrough(pre, body);
        bld.set_cond(body, body, exit, CondBehavior::Loop { trip: TripCount::Fixed(50) });
        bld.set_return(exit);
        let cfg = bld.finish().expect("valid");
        let p = EdgeProfile::from_expected(&cfg);
        assert!(p.block_count(body) > p.block_count(pre), "loop body hotter than preheader");
    }
}
