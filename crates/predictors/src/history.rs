//! Speculative / retired history registers and the DOLC path hash.
//!
//! The paper's predictors maintain **two** copies of their history (§3.2):
//! a *lookup* register updated speculatively at prediction time, and an
//! *update* register maintained at commit with correct-path information
//! only; on a misprediction the speculative register is restored. All
//! history state here is a couple of `u64`s, so per-branch checkpoints are
//! O(1) copies.

use sfetch_isa::wire::{WireReader, WireWriter};
use sfetch_isa::Addr;

/// Global (direction) history register pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GlobalHistory {
    spec: u64,
    retired: u64,
}

impl GlobalHistory {
    /// Creates empty histories.
    pub fn new() -> Self {
        Self::default()
    }

    /// Speculative history (newest outcome in bit 0).
    #[inline]
    pub fn spec(&self) -> u64 {
        self.spec
    }

    /// Retired (commit-time) history.
    #[inline]
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Shifts a speculative outcome in.
    #[inline]
    pub fn push_spec(&mut self, taken: bool) {
        self.spec = (self.spec << 1) | u64::from(taken);
    }

    /// Shifts a retired outcome in.
    #[inline]
    pub fn push_retired(&mut self, taken: bool) {
        self.retired = (self.retired << 1) | u64::from(taken);
    }

    /// Snapshot of the speculative register (cheap per-branch checkpoint).
    #[inline]
    pub fn snapshot(&self) -> u64 {
        self.spec
    }

    /// Restores the speculative register from a checkpoint — called on
    /// misprediction recovery *before* re-inserting the resolved outcome.
    #[inline]
    pub fn restore(&mut self, snap: u64) {
        self.spec = snap;
    }

    /// Serializes both registers (warm-state banking).
    pub fn save_wire(&self, w: &mut WireWriter) {
        let Self { spec, retired } = self;
        w.u64(*spec);
        w.u64(*retired);
    }

    /// Deserializes both registers.
    pub fn load_wire(r: &mut WireReader<'_>) -> Result<Self, String> {
        Ok(Self { spec: r.u64()?, retired: r.u64()? })
    }
}

/// DOLC (Depth-Older-Last-Current) path-hash geometry, as used by the
/// multiscalar path predictors and by the paper's cascaded second-level
/// tables: the stream predictor uses `12-2-4-10`, the trace predictor
/// `9-4-7-9` (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dolc {
    /// Number of older addresses contributing bits.
    pub depth: u32,
    /// Bits contributed by each older address.
    pub older: u32,
    /// Bits contributed by the most recent (last) address.
    pub last: u32,
    /// Bits contributed by the current fetch address.
    pub current: u32,
}

impl Dolc {
    /// The stream predictor geometry from Table 2.
    pub const STREAM: Dolc = Dolc { depth: 12, older: 2, last: 4, current: 10 };
    /// The trace predictor geometry from Table 2.
    pub const TRACE: Dolc = Dolc { depth: 9, older: 4, last: 7, current: 9 };
}

/// Snapshot of a [`PathHistory`] (two words).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PathSnapshot {
    reg: u64,
    last: u64,
}

/// A path-history register: a shift register holding `older` bits of each of
/// the last `depth` addresses, plus the full last address.
///
/// Maintained incrementally so snapshots and restores are O(1), which is
/// what lets every in-flight branch carry a checkpoint (the paper keeps a
/// speculative *lookup* register and a commit-time *update* register; this
/// type is instantiated twice).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PathHistory {
    reg: u64,
    last: u64,
}

#[inline]
fn mask(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// XOR-folds `x` down to `bits` bits.
#[inline]
fn fold(mut x: u64, bits: u32) -> u64 {
    if bits == 0 {
        return 0;
    }
    let mut acc = 0u64;
    while x != 0 {
        acc ^= x & mask(bits);
        x >>= bits;
    }
    acc
}

impl PathHistory {
    /// Creates an empty path history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pushes an address (a stream/trace start) into the path.
    ///
    /// The previously-last address contributes `older` bits (the whole
    /// address folded down to that budget, so round addresses still
    /// discriminate) to the older-register; the new address becomes "last".
    #[inline]
    pub fn push(&mut self, dolc: &Dolc, addr: Addr) {
        let width = (dolc.depth * dolc.older).min(63);
        self.reg =
            ((self.reg << dolc.older) | fold(self.last >> 2, dolc.older)) & mask(width);
        self.last = addr.get();
    }

    /// Computes a table index of `index_bits` bits from the path and the
    /// current fetch address.
    #[inline]
    pub fn index(&self, dolc: &Dolc, current: Addr, index_bits: u32) -> u64 {
        let older_part = fold(self.reg, index_bits);
        let last_part = fold(fold(self.last >> 2, dolc.last) << 1, index_bits);
        let cur_part = fold(fold(current.get() >> 2, dolc.current), index_bits);
        (older_part ^ last_part ^ cur_part) & mask(index_bits)
    }

    /// Snapshot for checkpointing.
    #[inline]
    pub fn snapshot(&self) -> PathSnapshot {
        PathSnapshot { reg: self.reg, last: self.last }
    }

    /// Restore from a checkpoint.
    #[inline]
    pub fn restore(&mut self, snap: PathSnapshot) {
        self.reg = snap.reg;
        self.last = snap.last;
    }

    /// Serializes the register pair (warm-state banking).
    pub fn save_wire(&self, w: &mut WireWriter) {
        let Self { reg, last } = self;
        w.u64(*reg);
        w.u64(*last);
    }

    /// Deserializes the register pair.
    pub fn load_wire(r: &mut WireReader<'_>) -> Result<Self, String> {
        Ok(Self { reg: r.u64()?, last: r.u64()? })
    }
}

impl PathSnapshot {
    /// Serializes the snapshot (warm-state banking; used by the RHS).
    pub fn save_wire(&self, w: &mut WireWriter) {
        let Self { reg, last } = self;
        w.u64(*reg);
        w.u64(*last);
    }

    /// Deserializes a snapshot.
    pub fn load_wire(r: &mut WireReader<'_>) -> Result<Self, String> {
        Ok(Self { reg: r.u64()?, last: r.u64()? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_history_shifts_and_restores() {
        let mut h = GlobalHistory::new();
        h.push_spec(true);
        h.push_spec(false);
        h.push_spec(true);
        assert_eq!(h.spec() & 0b111, 0b101);
        let snap = h.snapshot();
        h.push_spec(true);
        h.push_spec(true);
        h.restore(snap);
        assert_eq!(h.spec() & 0b111, 0b101);
        assert_eq!(h.retired(), 0, "retired history independent");
        h.push_retired(true);
        assert_eq!(h.retired(), 1);
    }

    #[test]
    fn path_history_distinguishes_paths() {
        let dolc = Dolc::STREAM;
        let a = Addr::new(0x1000);
        let b = Addr::new(0x2000);
        let cur = Addr::new(0x3000);

        let mut p1 = PathHistory::new();
        p1.push(&dolc, a);
        p1.push(&dolc, b);
        let mut p2 = PathHistory::new();
        p2.push(&dolc, b);
        p2.push(&dolc, a);
        assert_ne!(
            p1.index(&dolc, cur, 12),
            p2.index(&dolc, cur, 12),
            "different path orders should hash differently"
        );
    }

    #[test]
    fn path_index_depends_on_current_address() {
        let dolc = Dolc::STREAM;
        let mut p = PathHistory::new();
        p.push(&dolc, Addr::new(0x4000));
        let i1 = p.index(&dolc, Addr::new(0x100), 12);
        let i2 = p.index(&dolc, Addr::new(0x200), 12);
        assert_ne!(i1, i2);
    }

    #[test]
    fn path_snapshot_roundtrip() {
        let dolc = Dolc::TRACE;
        let mut p = PathHistory::new();
        p.push(&dolc, Addr::new(0xa0));
        let snap = p.snapshot();
        let idx = p.index(&dolc, Addr::new(0x10), 10);
        p.push(&dolc, Addr::new(0xb0));
        p.push(&dolc, Addr::new(0xc0));
        p.restore(snap);
        assert_eq!(p.index(&dolc, Addr::new(0x10), 10), idx);
    }

    #[test]
    fn index_fits_in_requested_bits() {
        let dolc = Dolc::STREAM;
        let mut p = PathHistory::new();
        for i in 0..100u64 {
            p.push(&dolc, Addr::new(0x1000 + i * 52));
            let idx = p.index(&dolc, Addr::new(0x77_7770 + i), 10);
            assert!(idx < 1024);
        }
    }

    #[test]
    fn fold_reduces_to_width() {
        assert_eq!(fold(0, 8), 0);
        assert!(fold(u64::MAX, 8) < 256);
        assert_eq!(fold(0xab, 8), 0xab);
        assert_eq!(fold(0x1_02, 8), 0x02 ^ 0x01);
    }

    #[test]
    fn older_register_is_bounded() {
        let dolc = Dolc { depth: 4, older: 2, last: 4, current: 4 };
        let mut p = PathHistory::new();
        for i in 0..1000u64 {
            p.push(&dolc, Addr::new(i * 4));
        }
        assert!(p.snapshot().reg < (1 << 8), "4 addrs x 2 bits = 8 bits max");
    }
}
