//! The perceptron branch predictor (Jiménez & Lin, HPCA 2001), in the
//! configuration the paper pairs with the FTB front-end (Table 2):
//! 512 perceptrons, 40 bits of global history, and a 4096-entry × 14-bit
//! local history table.

use sfetch_isa::wire::{WireReader, WireWriter};
use sfetch_isa::Addr;

/// Number of global history inputs (Table 2).
pub const GLOBAL_BITS: usize = 40;
/// Number of local history inputs (Table 2).
pub const LOCAL_BITS: usize = 14;
/// Weights per perceptron: bias + global + local.
const N_WEIGHTS: usize = 1 + GLOBAL_BITS + LOCAL_BITS;

/// A global+local perceptron direction predictor.
///
/// Weights are 8-bit saturating; the training threshold follows Jiménez's
/// θ = ⌊1.93·h + 14⌋ with `h` the total history length. The local history
/// table is updated at commit (speculative local history would need
/// per-entry checkpointing; the staleness costs a fraction of a percent,
/// which we accept and document).
#[derive(Debug, Clone)]
pub struct PerceptronPredictor {
    weights: Vec<[i8; N_WEIGHTS]>,
    local: Vec<u16>,
    theta: i32,
}

impl PerceptronPredictor {
    /// Creates a predictor with `n_perceptrons` weight vectors and
    /// `local_entries` local-history registers.
    ///
    /// # Panics
    ///
    /// Panics unless both sizes are powers of two.
    pub fn new(n_perceptrons: usize, local_entries: usize) -> Self {
        assert!(n_perceptrons.is_power_of_two());
        assert!(local_entries.is_power_of_two());
        let h = (GLOBAL_BITS + LOCAL_BITS) as f64;
        PerceptronPredictor {
            weights: vec![[0i8; N_WEIGHTS]; n_perceptrons],
            local: vec![0u16; local_entries],
            theta: (1.93 * h + 14.0) as i32,
        }
    }

    /// The Table 2 configuration: 512 perceptrons, 4096 local histories.
    pub fn table2() -> Self {
        Self::new(512, 4096)
    }

    #[inline]
    fn pindex(&self, pc: Addr) -> usize {
        ((pc.get() >> 2) as usize) & (self.weights.len() - 1)
    }

    #[inline]
    fn lindex(&self, pc: Addr) -> usize {
        ((pc.get() >> 2) as usize) & (self.local.len() - 1)
    }

    #[inline]
    fn output(&self, pc: Addr, ghist: u64) -> i32 {
        let w = &self.weights[self.pindex(pc)];
        let lhist = u64::from(self.local[self.lindex(pc)]);
        let mut y = i32::from(w[0]); // bias
        for (i, &wi) in w.iter().skip(1).take(GLOBAL_BITS).enumerate() {
            let x = if (ghist >> i) & 1 == 1 { 1 } else { -1 };
            y += i32::from(wi) * x;
        }
        for (i, &wi) in w.iter().skip(1 + GLOBAL_BITS).enumerate() {
            let x = if (lhist >> i) & 1 == 1 { 1 } else { -1 };
            y += i32::from(wi) * x;
        }
        y
    }

    /// Predicts the direction of the conditional at `pc` under speculative
    /// global history `ghist`.
    pub fn predict(&self, pc: Addr, ghist: u64) -> bool {
        self.output(pc, ghist) >= 0
    }

    /// Commit-time training: adjusts weights when mispredicted or when the
    /// output magnitude is below θ, then records the outcome in the local
    /// history.
    pub fn update(&mut self, pc: Addr, ghist: u64, taken: bool) {
        let y = self.output(pc, ghist);
        let pred = y >= 0;
        if pred != taken || y.abs() <= self.theta {
            let lhist = u64::from(self.local[self.lindex(pc)]);
            let t: i32 = if taken { 1 } else { -1 };
            let pi = self.pindex(pc);
            let w = &mut self.weights[pi];
            w[0] = sat_add(w[0], t);
            for i in 0..GLOBAL_BITS {
                let x = if (ghist >> i) & 1 == 1 { 1 } else { -1 };
                w[1 + i] = sat_add(w[1 + i], t * x);
            }
            for i in 0..LOCAL_BITS {
                let x = if (lhist >> i) & 1 == 1 { 1 } else { -1 };
                w[1 + GLOBAL_BITS + i] = sat_add(w[1 + GLOBAL_BITS + i], t * x);
            }
        }
        let li = self.lindex(pc);
        self.local[li] =
            ((self.local[li] << 1) | u16::from(taken)) & ((1 << LOCAL_BITS) - 1);
    }

    /// Storage in bits: weights (8 bits each) + local history table.
    pub fn storage_bits(&self) -> u64 {
        self.weights.len() as u64 * N_WEIGHTS as u64 * 8
            + self.local.len() as u64 * LOCAL_BITS as u64
    }

    /// Serializes weights and local histories (warm-state banking).
    pub fn save_wire(&self, w: &mut WireWriter) {
        let Self { weights, local, theta } = self;
        w.u64(*theta as u64);
        let mut wb = Vec::with_capacity(weights.len() * N_WEIGHTS);
        for row in weights {
            wb.extend(row.iter().map(|&v| v as u8));
        }
        w.bytes(&wb);
        let mut lb = Vec::with_capacity(local.len() * 2);
        for &h in local {
            lb.extend_from_slice(&h.to_le_bytes());
        }
        w.bytes(&lb);
    }

    /// Deserializes into this predictor; geometry must match.
    pub fn load_wire(&mut self, r: &mut WireReader<'_>) -> Result<(), String> {
        let theta = r.u64()?;
        if theta != self.theta as u64 {
            return Err(format!("perceptron theta {theta} does not match {}", self.theta));
        }
        let wb = r.bytes()?;
        if wb.len() != self.weights.len() * N_WEIGHTS {
            return Err(format!(
                "perceptron weight bytes {} do not match {}",
                wb.len(),
                self.weights.len() * N_WEIGHTS
            ));
        }
        for (row, chunk) in self.weights.iter_mut().zip(wb.chunks_exact(N_WEIGHTS)) {
            for (dst, &b) in row.iter_mut().zip(chunk) {
                *dst = b as i8;
            }
        }
        let lb = r.bytes()?;
        if lb.len() != self.local.len() * 2 {
            return Err(format!(
                "perceptron local-history bytes {} do not match {}",
                lb.len(),
                self.local.len() * 2
            ));
        }
        let lmask = (1u16 << LOCAL_BITS) - 1;
        for (dst, chunk) in self.local.iter_mut().zip(lb.chunks_exact(2)) {
            let v = u16::from_le_bytes([chunk[0], chunk[1]]);
            if v & !lmask != 0 {
                return Err(format!("perceptron local history {v:#x} out of range"));
            }
            *dst = v;
        }
        Ok(())
    }
}

#[inline]
fn sat_add(w: i8, d: i32) -> i8 {
    (i32::from(w) + d).clamp(i8::MIN as i32, i8::MAX as i32) as i8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_bias_quickly() {
        let mut p = PerceptronPredictor::new(64, 64);
        let pc = Addr::new(0x40_0010);
        for _ in 0..4 {
            p.update(pc, 0, true);
        }
        assert!(p.predict(pc, 0));
    }

    #[test]
    fn learns_linearly_separable_history_function() {
        // outcome = ghist bit 3 — exactly representable by one weight.
        let mut p = PerceptronPredictor::new(256, 256);
        let pc = Addr::new(0x40_0200);
        let mut hist = 0u64;
        let mut lcg = 99u64;
        let mut total = 0;
        let mut correct = 0;
        for i in 0..3000u64 {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
            let outcome = (hist >> 3) & 1 == 1;
            let pred = p.predict(pc, hist);
            if i > 500 {
                total += 1;
                correct += u64::from(pred == outcome);
            }
            p.update(pc, hist, outcome);
            hist = (hist << 1) | (lcg >> 33) & 1;
        }
        assert!(correct as f64 / total as f64 > 0.95);
    }

    #[test]
    fn local_history_catches_per_branch_patterns() {
        // Period-4 pattern, global history poisoned with noise: only the
        // local history can learn this.
        let mut p = PerceptronPredictor::new(256, 256);
        let pc = Addr::new(0x40_0300);
        let mut lcg = 7u64;
        let mut total = 0;
        let mut correct = 0;
        for i in 0..4000u64 {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(11);
            let noise_hist = lcg >> 24;
            let outcome = i % 4 < 2;
            let pred = p.predict(pc, noise_hist);
            if i > 1000 {
                total += 1;
                correct += u64::from(pred == outcome);
            }
            p.update(pc, noise_hist, outcome);
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.85, "local history should learn period-4, acc={acc}");
    }

    #[test]
    fn weights_saturate() {
        let mut p = PerceptronPredictor::new(2, 2);
        let pc = Addr::new(0);
        for _ in 0..1000 {
            p.update(pc, u64::MAX, true);
        }
        // No overflow panic and still predicting taken.
        assert!(p.predict(pc, u64::MAX));
    }

    #[test]
    fn table2_storage_is_about_30kb() {
        let bits = PerceptronPredictor::table2().storage_bits();
        let kb = bits as f64 / 8192.0;
        assert!((25.0..40.0).contains(&kb), "perceptron budget ~30KB, got {kb:.1}KB");
    }
}
