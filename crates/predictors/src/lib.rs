//! # sfetch-predictors
//!
//! Branch-prediction structures for the `stream-fetch` simulator — every
//! predictor named in Table 2 of *"Fetching instruction streams"*
//! (MICRO-35, 2002), built from scratch:
//!
//! | paper component | module |
//! |---|---|
//! | **next stream predictor** (cascaded, DOLC 12-2-4-10, hysteresis) | [`stream_pred`] |
//! | 2bcgskew (Alpha EV8)                                             | [`twobcgskew`] |
//! | perceptron (global + local history, FTB front-end)               | [`perceptron`] |
//! | next trace predictor (cascaded, DOLC 9-4-7-9, RHS)               | [`trace_pred`] |
//! | BTB (2048×4 EV8 / 1024×4 trace-cache backup)                     | [`btb`] |
//! | FTB (variable-length fetch blocks)                                | [`ftb`] |
//! | return address stack with shadow top-of-stack repair              | [`ras`] |
//! | gshare (trace-cache secondary-path direction predictor)           | [`gshare`] |
//!
//! Shared infrastructure: saturating [`counters`], speculative/retired
//! [`history`] registers with O(1) checkpointing (including the DOLC path
//! hash of the multiscalar lineage), and the set-associative [`assoc`]
//! table that all tagged structures share.
//!
//! All predictors are deterministic, allocation-free on the hot path, and
//! expose a `storage_bits()` cost model used by the Table 1 reproduction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assoc;
pub mod btb;
pub mod cascade;
pub mod counters;
pub mod ftb;
pub mod gshare;
pub mod history;
pub mod perceptron;
pub mod ras;
pub mod stream_pred;
pub mod trace_pred;
pub mod twobcgskew;

pub use assoc::AssocTable;
pub use btb::{Btb, BtbEntry};
pub use counters::Counter2;
pub use ftb::{Ftb, FtbEntry};
pub use gshare::Gshare;
pub use history::{Dolc, GlobalHistory, PathHistory, PathSnapshot};
pub use perceptron::PerceptronPredictor;
pub use ras::{Ras, RasSnapshot};
pub use stream_pred::{NextStreamPredictor, StreamPrediction, StreamPredictorConfig, StreamUpdate};
pub use trace_pred::{NextTracePredictor, TraceId, TracePredictorConfig, TracePrediction};
pub use twobcgskew::TwoBcGskew;
