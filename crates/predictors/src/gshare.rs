//! Gshare direction predictor (trace-cache secondary path).
//!
//! Table 2 gives the trace cache a backup BTB but leaves the secondary-path
//! *direction* predictor unnamed; consistent with the stated ≈45KB predictor
//! budget we use a 16K-entry gshare (~4KB). Documented as a substitution in
//! DESIGN.md.

use sfetch_isa::wire::{WireReader, WireWriter};
use sfetch_isa::Addr;

use crate::counters::Counter2;

/// A classic gshare predictor: PC ⊕ global-history indexed 2-bit counters.
#[derive(Debug, Clone)]
pub struct Gshare {
    table: Vec<Counter2>,
    hist_bits: u32,
}

impl Gshare {
    /// Creates a gshare with `entries` counters and `hist_bits` of history.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize, hist_bits: u32) -> Self {
        assert!(entries.is_power_of_two(), "entries must be a power of two");
        Gshare { table: vec![Counter2::WEAK_NT; entries], hist_bits }
    }

    #[inline]
    fn index(&self, pc: Addr, hist: u64) -> usize {
        let mask = self.table.len() as u64 - 1;
        let h = hist & ((1u64 << self.hist_bits.min(63)) - 1);
        (((pc.get() >> 2) ^ h) & mask) as usize
    }

    /// Predicts the direction of the conditional at `pc` under `hist`.
    pub fn predict(&self, pc: Addr, hist: u64) -> bool {
        self.table[self.index(pc, hist)].taken()
    }

    /// Commit-time training with the resolved outcome and the history the
    /// prediction was made under.
    pub fn update(&mut self, pc: Addr, hist: u64, taken: bool) {
        let i = self.index(pc, hist);
        self.table[i].train(taken);
    }

    /// Storage in bits.
    pub fn storage_bits(&self) -> u64 {
        self.table.len() as u64 * 2
    }

    /// Serializes the counter table (warm-state banking).
    pub fn save_wire(&self, w: &mut WireWriter) {
        let Self { table, hist_bits } = self;
        w.u32(*hist_bits);
        Counter2::save_slice(w, table);
    }

    /// Deserializes into this predictor; geometry must match.
    pub fn load_wire(&mut self, r: &mut WireReader<'_>) -> Result<(), String> {
        let hist_bits = r.u32()?;
        if hist_bits != self.hist_bits {
            return Err(format!(
                "gshare history width {hist_bits} does not match {}",
                self.hist_bits
            ));
        }
        Counter2::load_slice(r, &mut self.table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_bias() {
        let mut g = Gshare::new(1024, 8);
        let pc = Addr::new(0x400100);
        for _ in 0..4 {
            g.update(pc, 0, true);
        }
        assert!(g.predict(pc, 0));
        for _ in 0..4 {
            g.update(pc, 0, false);
        }
        assert!(!g.predict(pc, 0));
    }

    #[test]
    fn history_separates_contexts() {
        let mut g = Gshare::new(1024, 8);
        let pc = Addr::new(0x400100);
        // Outcome correlates with history: taken iff hist lsb set.
        for _ in 0..8 {
            g.update(pc, 0b1, true);
            g.update(pc, 0b0, false);
        }
        assert!(g.predict(pc, 0b1));
        assert!(!g.predict(pc, 0b0));
    }

    #[test]
    fn learns_alternating_pattern_via_history() {
        let mut g = Gshare::new(4096, 10);
        let pc = Addr::new(0x40_0230);
        let mut hist = 0u64;
        let mut correct = 0;
        let mut total = 0;
        for i in 0..400u64 {
            let outcome = i % 2 == 0;
            let pred = g.predict(pc, hist);
            if i >= 100 {
                total += 1;
                correct += u64::from(pred == outcome);
            }
            g.update(pc, hist, outcome);
            hist = (hist << 1) | u64::from(outcome);
        }
        assert!(correct as f64 / total as f64 > 0.95, "gshare must learn period-2");
    }

    #[test]
    fn storage_counts_two_bits_per_entry() {
        assert_eq!(Gshare::new(16_384, 12).storage_bits(), 32_768);
    }
}
