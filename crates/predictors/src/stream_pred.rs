//! The **next stream predictor** — the paper's novel contribution (§3.2,
//! Fig. 5).
//!
//! Given the current fetch address, the predictor returns the current
//! stream's *length*, its terminating branch *type* (for RAS management)
//! and the *next stream's starting address*. It thereby subsumes both the
//! conditional direction predictor (all embedded branches implicitly
//! not-taken; the terminator implicitly taken) and the BTB/FTB (the next
//! address is the target prediction).
//!
//! Organization: a *cascaded* pair of tables — an address-indexed first
//! level (1K × 4 in Table 2) and a path-indexed second level (6K × 3,
//! DOLC 12-2-4-10) — with 2-bit hysteresis replacement, which is what lets
//! it hold **overlapping streams** (§2.1, §3.2). Two path registers are
//! kept: a speculative *lookup* register (checkpointed per in-flight
//! request) and a commit-time *update* register.

use sfetch_isa::wire::{WireReader, WireWriter};
use sfetch_isa::{Addr, BranchKind};

use crate::cascade::{Cascade, CascadeStats};
use crate::history::{Dolc, PathHistory, PathSnapshot};

/// Configuration of the next stream predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamPredictorConfig {
    /// Entries and associativity of the address-indexed first level.
    pub first: (usize, usize),
    /// Entries and associativity of the path-indexed second level.
    pub second: (usize, usize),
    /// DOLC geometry of the path hash.
    pub dolc: Dolc,
    /// Maximum representable stream length in instructions.
    pub max_len: u32,
}

impl StreamPredictorConfig {
    /// The Table 2 configuration: 1K×4 first level, 6K×3 second level,
    /// DOLC 12-2-4-10.
    pub fn table2() -> Self {
        StreamPredictorConfig {
            first: (1024, 4),
            second: (6144, 3),
            dolc: Dolc::STREAM,
            max_len: 64,
        }
    }

    /// A single-level variant (second level disabled) for the cascade
    /// ablation.
    pub fn single_level() -> Self {
        StreamPredictorConfig {
            // Slightly more than the cascade's total budget, in one
            // address-indexed table (power-of-two sets).
            first: (8192, 4),
            second: (4, 1),
            dolc: Dolc::STREAM,
            max_len: 64,
        }
    }
}

/// Stream payload held in a predictor entry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct StreamData {
    len: u32,
    /// Terminating branch kind; `None` = sequential continuation (the
    /// stream was split by the length cap).
    kind: Option<BranchKind>,
    next: Addr,
}

/// A stream prediction: fetch `len` instructions from `start`, then
/// continue at `next`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamPrediction {
    /// Stream starting address (the lookup address).
    pub start: Addr,
    /// Stream length in instructions, including the terminating branch.
    pub len: u32,
    /// Terminating branch kind (`None` = sequential split).
    pub kind: Option<BranchKind>,
    /// Predicted next stream start. For `kind == Some(Return)` the fetch
    /// engine overrides this with the RAS top.
    pub next: Addr,
    /// Whether the path-correlated second level provided the prediction.
    pub from_second: bool,
}

/// A completed stream observed at commit, used to train the predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamUpdate {
    /// Stream starting address.
    pub start: Addr,
    /// Observed length.
    pub len: u32,
    /// Observed terminating branch kind (`None` = split by cap).
    pub kind: Option<BranchKind>,
    /// Observed next stream start.
    pub next: Addr,
    /// Whether the front-end mispredicted this stream (gates the upgrade
    /// into the path-correlated level).
    pub mispredicted: bool,
}

/// The cascaded next stream predictor.
///
/// ```
/// use sfetch_predictors::{NextStreamPredictor, StreamPredictorConfig, StreamUpdate};
/// use sfetch_isa::{Addr, BranchKind};
///
/// let mut p = NextStreamPredictor::new(StreamPredictorConfig::table2());
/// let start = Addr::new(0x40_0000);
/// p.commit_stream(StreamUpdate {
///     start, len: 17, kind: Some(BranchKind::Cond), next: Addr::new(0x40_0800),
///     mispredicted: false,
/// });
/// let pred = p.predict(start).expect("trained");
/// assert_eq!(pred.len, 17);
/// assert_eq!(pred.next, Addr::new(0x40_0800));
/// ```
#[derive(Debug, Clone)]
pub struct NextStreamPredictor {
    config: StreamPredictorConfig,
    cascade: Cascade<StreamData>,
    spec_path: PathHistory,
    retired_path: PathHistory,
}

impl NextStreamPredictor {
    /// Creates a predictor with the given configuration.
    pub fn new(config: StreamPredictorConfig) -> Self {
        NextStreamPredictor {
            config,
            cascade: Cascade::new(config.first, config.second, config.dolc),
            spec_path: PathHistory::new(),
            retired_path: PathHistory::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &StreamPredictorConfig {
        &self.config
    }

    /// Predicts the stream starting at `pc` under the speculative path.
    /// `None` means both levels missed — the fetch engine falls back to
    /// sequential fetching (§3.2).
    pub fn predict(&mut self, pc: Addr) -> Option<StreamPrediction> {
        let (d, from_second) = self.cascade.predict(&self.spec_path, pc)?;
        Some(StreamPrediction {
            start: pc,
            len: d.len.min(self.config.max_len).max(1),
            kind: d.kind,
            next: d.next,
            from_second,
        })
    }

    /// Pushes a fetch-request start address into the speculative *lookup*
    /// path register. Call for every issued request — predicted, sequential
    /// fallback, and partial streams after recoveries — mirroring the
    /// commit-side update register.
    pub fn notify_fetch(&mut self, start: Addr) {
        self.spec_path.push(&self.config.dolc, start);
    }

    /// Speculative-path checkpoint, captured with each in-flight request.
    pub fn snapshot(&self) -> PathSnapshot {
        self.spec_path.snapshot()
    }

    /// Restores the speculative path after a misprediction: the paper
    /// copies the non-speculative register's state; we restore the exact
    /// checkpoint, which is the same repair with per-branch precision.
    pub fn restore(&mut self, snap: PathSnapshot) {
        self.spec_path.restore(snap);
    }

    /// Side-effect-free lookup under the **retired** path: what the
    /// front-end would have predicted for a stream starting at `pc`,
    /// assuming its speculative path register tracked the retired one (it
    /// does in steady state). Functional warming uses this to synthesize
    /// misprediction bits — and through them the partial-stream entries a
    /// real front-end trains at recovery points — without counting
    /// statistics or touching LRU state.
    pub fn probe_retired(&self, pc: Addr) -> Option<StreamPrediction> {
        let (d, from_second) = self.cascade.probe(&self.retired_path, pc)?;
        Some(StreamPrediction {
            start: pc,
            len: d.len.min(self.config.max_len).max(1),
            kind: d.kind,
            next: d.next,
            from_second,
        })
    }

    /// Trains the predictor with a completed stream and advances the
    /// retired *update* path register.
    pub fn commit_stream(&mut self, up: StreamUpdate) {
        self.train(up);
        self.notify_retire(up.start);
    }

    /// Table-only training with the current retired path, *without*
    /// advancing the path register. The fetch engine's commit logic closes
    /// several overlapping streams at one taken branch (the original stream
    /// plus the partial streams opened at recoveries inside it, §1) and
    /// interleaves `train`/`notify_retire` to keep the update register
    /// aligned with the speculative one.
    pub fn train(&mut self, up: StreamUpdate) {
        let data = StreamData {
            len: up.len.min(self.config.max_len).max(1),
            kind: up.kind,
            next: up.next,
        };
        self.cascade.update(&self.retired_path, up.start, data, up.mispredicted);
    }

    /// Advances the retired *update* path register without a table update —
    /// used when an accumulation is aborted by a misprediction (the partial
    /// stream discipline keeps the lookup and update registers aligned).
    pub fn notify_retire(&mut self, start: Addr) {
        self.retired_path.push(&self.config.dolc, start);
    }

    /// Cascade hit/miss statistics.
    pub fn stats(&self) -> CascadeStats {
        self.cascade.stats()
    }

    /// Storage estimate in bits. Payload: length (6) + type (3) +
    /// next address (30).
    pub fn storage_bits(&self) -> u64 {
        self.cascade.storage_bits(6 + 3 + 30) + 2 * 64 + 2 * 64
    }

    /// Serializes tables, statistics and both path registers (warm-state
    /// banking).
    pub fn save_wire(&self, w: &mut WireWriter) {
        let Self { config: _, cascade, spec_path, retired_path } = self;
        cascade.save_wire_with(w, &mut |w, d| {
            let StreamData { len, kind, next } = d;
            w.u32(*len);
            w.branch_kind(*kind);
            w.addr(*next);
        });
        spec_path.save_wire(w);
        retired_path.save_wire(w);
    }

    /// Deserializes into this predictor; the configuration must match the
    /// one the state was saved under.
    pub fn load_wire(&mut self, r: &mut WireReader<'_>) -> Result<(), String> {
        self.cascade.load_wire_with(r, &mut |r| {
            Ok(StreamData { len: r.u32()?, kind: r.branch_kind()?, next: r.addr()? })
        })?;
        self.spec_path = PathHistory::load_wire(r)?;
        self.retired_path = PathHistory::load_wire(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train(p: &mut NextStreamPredictor, start: u64, len: u32, next: u64, n: usize) {
        for _ in 0..n {
            p.commit_stream(StreamUpdate {
                start: Addr::new(start),
                len,
                kind: Some(BranchKind::Cond),
                next: Addr::new(next),
                mispredicted: false,
            });
        }
    }

    #[test]
    fn cold_predictor_misses() {
        let mut p = NextStreamPredictor::new(StreamPredictorConfig::table2());
        assert!(p.predict(Addr::new(0x40_0000)).is_none());
        assert_eq!(p.stats().misses, 1);
    }

    #[test]
    fn learns_stream_identity() {
        let mut p = NextStreamPredictor::new(StreamPredictorConfig::table2());
        train(&mut p, 0x40_0000, 21, 0x40_0800, 3);
        let pr = p.predict(Addr::new(0x40_0000)).expect("hit");
        assert_eq!(pr.len, 21);
        assert_eq!(pr.kind, Some(BranchKind::Cond));
        assert_eq!(pr.next, Addr::new(0x40_0800));
    }

    #[test]
    fn overlapping_streams_coexist_via_path_correlation() {
        // Two streams share a start address but differ by path — exactly
        // the case the paper says the FTB cannot hold and the cascaded
        // predictor can (§2.1). We train by committing realistic stream
        // sequences: the retired path register is built from the preceding
        // stream starts.
        let mut p = NextStreamPredictor::new(StreamPredictorConfig::table2());
        let start = Addr::new(0x40_0000);
        let up = |s: u64, len: u32, next: u64, mis: bool| StreamUpdate {
            start: Addr::new(s),
            len,
            kind: Some(BranchKind::Cond),
            next: Addr::new(next),
            mispredicted: mis,
        };
        // A common prefix longer than the DOLC depth pins the older-path
        // register to a known state in training and at prediction time.
        let wash: Vec<u64> = (0..13).map(|i| 0x50_0000 + i * 0x100).collect();
        for _ in 0..6 {
            // Context A: wash… → 41_0000 → 42_0000 → start, stream (8, →40_0020).
            for &w in &wash {
                p.commit_stream(up(w, 4, w + 0x100, false));
            }
            p.commit_stream(up(0x41_0000, 4, 0x42_0000, false));
            p.commit_stream(up(0x42_0000, 4, 0x40_0000, false));
            p.commit_stream(up(0x40_0000, 8, 0x40_0020, true));
            // Context B: wash… → 43_0000 → 44_0000 → start, stream (24, →40_0400).
            for &w in &wash {
                p.commit_stream(up(w, 4, w + 0x100, false));
            }
            p.commit_stream(up(0x43_0000, 4, 0x44_0000, false));
            p.commit_stream(up(0x44_0000, 4, 0x40_0000, false));
            p.commit_stream(up(0x40_0000, 24, 0x40_0400, true));
        }
        // Recreate context A on the speculative side.
        p.restore(PathSnapshot::default());
        for &w in &wash {
            p.notify_fetch(Addr::new(w));
        }
        p.notify_fetch(Addr::new(0x41_0000));
        p.notify_fetch(Addr::new(0x42_0000));
        let pa = p.predict(start).expect("hit under path A");
        assert_eq!((pa.len, pa.next), (8, Addr::new(0x40_0020)));
        assert!(pa.from_second);
        // Recreate context B.
        p.restore(PathSnapshot::default());
        for &w in &wash {
            p.notify_fetch(Addr::new(w));
        }
        p.notify_fetch(Addr::new(0x43_0000));
        p.notify_fetch(Addr::new(0x44_0000));
        let pb = p.predict(start).expect("hit under path B");
        assert_eq!((pb.len, pb.next), (24, Addr::new(0x40_0400)));
        assert!(pb.from_second);
    }

    #[test]
    fn snapshot_restore_roundtrips() {
        let mut p = NextStreamPredictor::new(StreamPredictorConfig::table2());
        train(&mut p, 0x40_0000, 10, 0x40_0100, 2);
        p.notify_fetch(Addr::new(0x40_0000));
        let snap = p.snapshot();
        let before = p.predict(Addr::new(0x40_0100));
        p.notify_fetch(Addr::new(0x00de_ad00));
        p.notify_fetch(Addr::new(0x00be_ef00));
        p.restore(snap);
        assert_eq!(p.predict(Addr::new(0x40_0100)), before);
    }

    #[test]
    fn length_cap_is_enforced() {
        let mut p = NextStreamPredictor::new(StreamPredictorConfig::table2());
        p.commit_stream(StreamUpdate {
            start: Addr::new(0x40_0000),
            len: 5000,
            kind: None,
            next: Addr::new(0x40_5000),
            mispredicted: false,
        });
        let pr = p.predict(Addr::new(0x40_0000)).expect("hit");
        assert!(pr.len <= p.config().max_len);
    }

    #[test]
    fn hysteresis_protects_against_one_off_lengthsable() {
        let mut p = NextStreamPredictor::new(StreamPredictorConfig::table2());
        train(&mut p, 0x40_0000, 16, 0x40_0200, 4);
        // One early exit (shorter stream) must not evict immediately.
        p.commit_stream(StreamUpdate {
            start: Addr::new(0x40_0000),
            len: 4,
            kind: Some(BranchKind::Cond),
            next: Addr::new(0x40_0010),
            mispredicted: true,
        });
        let pr = p.predict(Addr::new(0x40_0000)).expect("hit");
        assert_eq!(pr.len, 16, "dominant stream survives a transient");
    }

    #[test]
    fn storage_matches_table2_scale() {
        let p = NextStreamPredictor::new(StreamPredictorConfig::table2());
        let kb = p.storage_bits() as f64 / 8192.0;
        // 7K+ entries x ~63 bits ≈ 55KB — same order as the 45KB budget the
        // paper quotes for direction+target prediction.
        assert!((30.0..90.0).contains(&kb), "stream predictor ~{kb:.0}KB");
    }
}
