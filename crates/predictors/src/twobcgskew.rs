//! The 2Bc-gskew predictor of the Alpha EV8 (Seznec et al., ISCA 2002).
//!
//! Four tables — BIM (bimodal), G0 and G1 (two gskew banks with different
//! history lengths), and META — each 32K entries in Table 2, driven by a
//! 15-bit global history. Prediction is `META ? majority(BIM,G0,G1) : BIM`;
//! the update follows Seznec's *partial update* policy: only the structures
//! that participated (or must be corrected) are written, which preserves
//! hysteresis and reduces aliasing.

use sfetch_isa::wire::{WireReader, WireWriter};
use sfetch_isa::Addr;

use crate::counters::Counter2;

/// The EV8 2Bc-gskew conditional branch predictor.
///
/// ```
/// use sfetch_predictors::TwoBcGskew;
/// use sfetch_isa::Addr;
///
/// let mut p = TwoBcGskew::ev8();
/// let pc = Addr::new(0x40_0000);
/// for _ in 0..8 { p.update(pc, 0, true); }
/// assert!(p.predict(pc, 0));
/// ```
#[derive(Debug, Clone)]
pub struct TwoBcGskew {
    bim: Vec<Counter2>,
    g0: Vec<Counter2>,
    g1: Vec<Counter2>,
    meta: Vec<Counter2>,
    h0: u32,
    h1: u32,
}

/// gskew-style skewing functions: three distinct index mixes so the banks
/// alias differently (H, H', H'' in the gskew literature). Each salt
/// multiplies the history by a different odd constant before folding it
/// into the index width, which preserves the de-aliasing property.
#[inline]
fn mix(pc: u64, hist: u64, salt: u64, mask: u64) -> usize {
    const PRIMES: [u64; 4] = [
        0x9e37_79b9_7f4a_7c15,
        0xc2b2_ae3d_27d4_eb4f,
        0x1656_67b1_9e37_79f9,
        0x27d4_eb2f_1656_67c5,
    ];
    let bits = (mask + 1).trailing_zeros();
    let mut h = hist.wrapping_mul(PRIMES[(salt as usize) & 3]);
    // XOR-fold down to the index width.
    let mut folded = 0u64;
    while h != 0 {
        folded ^= h & mask;
        h >>= bits.max(1);
    }
    ((pc ^ folded) & mask) as usize
}

impl TwoBcGskew {
    /// Creates a predictor with `entries` counters per table and history
    /// lengths `h0 < h1`.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize, h0: u32, h1: u32) -> Self {
        assert!(entries.is_power_of_two());
        TwoBcGskew {
            bim: vec![Counter2::WEAK_NT; entries],
            g0: vec![Counter2::WEAK_NT; entries],
            g1: vec![Counter2::WEAK_NT; entries],
            meta: vec![Counter2::WEAK_T; entries], // start trusting e-gskew
            h0,
            h1,
        }
    }

    /// The EV8 configuration of Table 2: 4 × 32K entries, 15-bit history.
    pub fn ev8() -> Self {
        Self::new(32 * 1024, 7, 15)
    }

    #[inline]
    fn mask(&self) -> u64 {
        self.bim.len() as u64 - 1
    }

    #[inline]
    fn indices(&self, pc: Addr, hist: u64) -> (usize, usize, usize, usize) {
        let pc = pc.get() >> 2;
        let m = self.mask();
        let hist0 = hist & ((1 << self.h0) - 1);
        let hist1 = hist & ((1 << self.h1) - 1);
        let i_bim = (pc & m) as usize;
        let i_g0 = mix(pc, hist0, 1, m);
        let i_g1 = mix(pc, hist1, 2, m);
        let i_meta = mix(pc, hist1, 3, m);
        (i_bim, i_g0, i_g1, i_meta)
    }

    /// Predicts the direction of the conditional at `pc` under (speculative)
    /// global history `hist`.
    pub fn predict(&self, pc: Addr, hist: u64) -> bool {
        let (ib, i0, i1, im) = self.indices(pc, hist);
        let b = self.bim[ib].taken();
        let g0 = self.g0[i0].taken();
        let g1 = self.g1[i1].taken();
        let majority = (u8::from(b) + u8::from(g0) + u8::from(g1)) >= 2;
        if self.meta[im].taken() {
            majority
        } else {
            b
        }
    }

    /// Commit-time update (partial-update policy) under the history the
    /// prediction used.
    pub fn update(&mut self, pc: Addr, hist: u64, taken: bool) {
        let (ib, i0, i1, im) = self.indices(pc, hist);
        let b = self.bim[ib].taken();
        let g0 = self.g0[i0].taken();
        let g1 = self.g1[i1].taken();
        let majority = (u8::from(b) + u8::from(g0) + u8::from(g1)) >= 2;
        let use_skew = self.meta[im].taken();
        let pred = if use_skew { majority } else { b };

        // META learns which of {bimodal, e-gskew} to trust, but only when
        // they disagree.
        if b != majority {
            self.meta[im].train(majority == taken);
        }

        if pred == taken {
            // Correct: strengthen only the banks that agreed (partial update).
            if use_skew {
                if b == taken {
                    self.bim[ib].train(taken);
                }
                if g0 == taken {
                    self.g0[i0].train(taken);
                }
                if g1 == taken {
                    self.g1[i1].train(taken);
                }
            } else {
                self.bim[ib].train(taken);
            }
        } else {
            // Mispredicted: retrain every bank towards the outcome.
            self.bim[ib].train(taken);
            self.g0[i0].train(taken);
            self.g1[i1].train(taken);
        }
    }

    /// Storage in bits: four tables of 2-bit counters.
    pub fn storage_bits(&self) -> u64 {
        (self.bim.len() + self.g0.len() + self.g1.len() + self.meta.len()) as u64 * 2
    }

    /// Serializes all four counter banks (warm-state banking).
    pub fn save_wire(&self, w: &mut WireWriter) {
        let Self { bim, g0, g1, meta, h0, h1 } = self;
        w.u32(*h0);
        w.u32(*h1);
        Counter2::save_slice(w, bim);
        Counter2::save_slice(w, g0);
        Counter2::save_slice(w, g1);
        Counter2::save_slice(w, meta);
    }

    /// Deserializes into this predictor; geometry must match.
    pub fn load_wire(&mut self, r: &mut WireReader<'_>) -> Result<(), String> {
        let h0 = r.u32()?;
        let h1 = r.u32()?;
        if h0 != self.h0 || h1 != self.h1 {
            return Err(format!(
                "2bcgskew history lengths {h0}/{h1} do not match {}/{}",
                self.h0, self.h1
            ));
        }
        Counter2::load_slice(r, &mut self.bim)?;
        Counter2::load_slice(r, &mut self.g0)?;
        Counter2::load_slice(r, &mut self.g1)?;
        Counter2::load_slice(r, &mut self.meta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_static_bias() {
        let mut p = TwoBcGskew::new(1024, 4, 8);
        let pc = Addr::new(0x40_0104);
        for _ in 0..8 {
            p.update(pc, 0b1010, true);
        }
        assert!(p.predict(pc, 0b1010));
    }

    #[test]
    fn learns_history_correlation() {
        let mut p = TwoBcGskew::new(4096, 4, 10);
        let pc = Addr::new(0x40_0104);
        let mut hist = 0u64;
        let mut correct = 0u32;
        let mut total = 0u32;
        for i in 0..2000u64 {
            let outcome = (i / 3) % 2 == 0; // period-6 pattern
            let pred = p.predict(pc, hist);
            if i > 500 {
                total += 1;
                correct += u32::from(pred == outcome);
            }
            p.update(pc, hist, outcome);
            hist = (hist << 1) | u64::from(outcome);
        }
        let acc = f64::from(correct) / f64::from(total);
        assert!(acc > 0.9, "2bcgskew should learn periodic patterns, acc={acc}");
    }

    #[test]
    fn bimodal_fallback_handles_history_noise() {
        // A branch that is ~90% taken but whose history is chaotic (many
        // other branches sharing history) should settle near the bias.
        let mut p = TwoBcGskew::new(4096, 4, 10);
        let pc = Addr::new(0x40_3344);
        let mut correct = 0u32;
        let mut total = 0u32;
        let mut lcg = 12345u64;
        for i in 0..4000u64 {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let hist = lcg >> 32; // uncorrelated noise history
            let outcome = !(lcg >> 16).is_multiple_of(10); // 90% taken
            let pred = p.predict(pc, hist);
            if i > 1000 {
                total += 1;
                correct += u32::from(pred == outcome);
            }
            p.update(pc, hist, outcome);
        }
        let acc = f64::from(correct) / f64::from(total);
        assert!(acc > 0.8, "bimodal component must save biased branches, acc={acc}");
    }

    #[test]
    fn ev8_configuration_sizes() {
        let p = TwoBcGskew::ev8();
        // 4 tables x 32K x 2 bits = 256 Kbit = 32 KB.
        assert_eq!(p.storage_bits(), 4 * 32 * 1024 * 2);
    }
}
