//! The next trace predictor (Jacobson, Rotenberg, Smith — §2.2, Table 2),
//! with a return history stack (RHS).
//!
//! The predictor gives *trace-level sequencing*: given the current fetch
//! address and the path of preceding traces, it predicts the trace's shape
//! (embedded conditional directions), its length, and the next trace's
//! start — the trace-cache analogue of the next stream predictor, and like
//! it organized as a cascaded pair (1K×4 + 4K×4, DOLC 9-4-7-9) with
//! hysteresis replacement.
//!
//! The RHS saves the path register at calls and restores it at returns, so
//! post-return predictions correlate with the *caller's* path instead of
//! callee noise.

use sfetch_isa::wire::{WireReader, WireWriter};
use sfetch_isa::{Addr, BranchKind};

use crate::cascade::{Cascade, CascadeStats};
use crate::history::{Dolc, PathHistory, PathSnapshot};

/// Identity of a trace as the trace cache keys it: start address plus the
/// directions of its embedded conditional branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId {
    /// First instruction address.
    pub start: Addr,
    /// Bitmask of embedded conditional directions (bit i = i-th conditional
    /// taken), including the terminating branch if conditional.
    pub dirs: u8,
    /// Number of conditional branches in the trace.
    pub n_cond: u8,
}

/// Payload of a trace predictor entry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct TraceData {
    dirs: u8,
    n_cond: u8,
    len: u8,
    kind_code: u8, // encoded Option<BranchKind> of the trace terminator
    next: Addr,
}

/// A trace prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TracePrediction {
    /// Predicted trace identity (for the trace-cache lookup).
    pub id: TraceId,
    /// Trace length in instructions.
    pub len: u8,
    /// Kind of the trace-terminating branch (`None` = trace ends
    /// sequentially at the length limit).
    pub term: Option<BranchKind>,
    /// Predicted next trace start (overridden via RAS for returns).
    pub next: Addr,
    /// Whether the path-indexed second level answered.
    pub from_second: bool,
}

/// Commit-time observation of a completed trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceUpdate {
    /// Trace identity.
    pub id: TraceId,
    /// Observed length.
    pub len: u8,
    /// Observed terminator kind.
    pub term: Option<BranchKind>,
    /// Observed next trace start.
    pub next: Addr,
    /// Whether the front-end mispredicted inside this trace.
    pub mispredicted: bool,
}

/// Configuration of the next trace predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TracePredictorConfig {
    /// First-level (entries, ways).
    pub first: (usize, usize),
    /// Second-level (entries, ways).
    pub second: (usize, usize),
    /// DOLC geometry.
    pub dolc: Dolc,
    /// Return history stack depth.
    pub rhs_entries: usize,
}

impl TracePredictorConfig {
    /// The Table 2 configuration: 1K×4 + 4K×4, DOLC 9-4-7-9, 8-entry RHS.
    pub fn table2() -> Self {
        TracePredictorConfig {
            first: (1024, 4),
            second: (4096, 4),
            dolc: Dolc::TRACE,
            rhs_entries: 8,
        }
    }
}

fn encode_kind(k: Option<BranchKind>) -> u8 {
    match k {
        None => 0,
        Some(BranchKind::Cond) => 1,
        Some(BranchKind::Jump) => 2,
        Some(BranchKind::Call) => 3,
        Some(BranchKind::Return) => 4,
        Some(BranchKind::IndirectJump) => 5,
        Some(BranchKind::IndirectCall) => 6,
    }
}

fn decode_kind(c: u8) -> Option<BranchKind> {
    match c {
        1 => Some(BranchKind::Cond),
        2 => Some(BranchKind::Jump),
        3 => Some(BranchKind::Call),
        4 => Some(BranchKind::Return),
        5 => Some(BranchKind::IndirectJump),
        6 => Some(BranchKind::IndirectCall),
        _ => None,
    }
}

/// The cascaded next trace predictor with return history stack.
#[derive(Debug, Clone)]
pub struct NextTracePredictor {
    config: TracePredictorConfig,
    cascade: Cascade<TraceData>,
    spec_path: PathHistory,
    retired_path: PathHistory,
    rhs: Vec<PathSnapshot>,
}

impl NextTracePredictor {
    /// Creates a predictor.
    pub fn new(config: TracePredictorConfig) -> Self {
        NextTracePredictor {
            config,
            cascade: Cascade::new(config.first, config.second, config.dolc),
            spec_path: PathHistory::new(),
            retired_path: PathHistory::new(),
            rhs: Vec::with_capacity(config.rhs_entries),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TracePredictorConfig {
        &self.config
    }

    /// Predicts the trace starting at `pc` under the speculative path.
    pub fn predict(&mut self, pc: Addr) -> Option<TracePrediction> {
        let (d, from_second) = self.cascade.predict(&self.spec_path, pc)?;
        Some(TracePrediction {
            id: TraceId { start: pc, dirs: d.dirs, n_cond: d.n_cond },
            len: d.len.max(1),
            term: decode_kind(d.kind_code),
            next: d.next,
            from_second,
        })
    }

    /// Advances the speculative path with a fetched trace: pushes the trace
    /// start address and maintains the RHS for call/return-terminated
    /// traces. (Only the start enters the path hash so the secondary fetch
    /// path — which cannot know branch directions ahead of time — stays
    /// aligned with the commit-side update register.)
    pub fn notify_fetch(&mut self, id: TraceId, term: Option<BranchKind>) {
        self.spec_path.push(&self.config.dolc, id.start);
        match term {
            Some(BranchKind::Call) | Some(BranchKind::IndirectCall) => {
                if self.rhs.len() == self.config.rhs_entries {
                    self.rhs.remove(0);
                }
                self.rhs.push(self.spec_path.snapshot());
            }
            Some(BranchKind::Return) => {
                if let Some(snap) = self.rhs.pop() {
                    self.spec_path.restore(snap);
                }
            }
            _ => {}
        }
    }

    /// Speculative path checkpoint (the RHS pointer drifts across deep
    /// wrong paths; the paper's hardware has the same imprecision).
    pub fn snapshot(&self) -> PathSnapshot {
        self.spec_path.snapshot()
    }

    /// Restores the speculative path after a misprediction.
    pub fn restore(&mut self, snap: PathSnapshot) {
        self.spec_path.restore(snap);
    }

    /// Trains the predictor with a completed trace and advances the retired
    /// path.
    pub fn commit_trace(&mut self, up: TraceUpdate) {
        let data = TraceData {
            dirs: up.id.dirs,
            n_cond: up.id.n_cond,
            len: up.len.max(1),
            kind_code: encode_kind(up.term),
            next: up.next,
        };
        self.cascade.update(&self.retired_path, up.id.start, data, up.mispredicted);
        self.retired_path.push(&self.config.dolc, up.id.start);
    }

    /// Cascade statistics.
    pub fn stats(&self) -> CascadeStats {
        self.cascade.stats()
    }

    /// Storage estimate in bits: dirs (3) + count (2) + len (5) + kind (3)
    /// + next (30) payload per entry, plus the RHS.
    pub fn storage_bits(&self) -> u64 {
        self.cascade.storage_bits(3 + 2 + 5 + 3 + 30)
            + self.config.rhs_entries as u64 * 128
    }

    /// Serializes tables, statistics, path registers and the RHS
    /// (warm-state banking).
    pub fn save_wire(&self, w: &mut WireWriter) {
        let Self { config: _, cascade, spec_path, retired_path, rhs } = self;
        cascade.save_wire_with(w, &mut |w, d| {
            let TraceData { dirs, n_cond, len, kind_code, next } = d;
            w.u8(*dirs);
            w.u8(*n_cond);
            w.u8(*len);
            w.u8(*kind_code);
            w.addr(*next);
        });
        spec_path.save_wire(w);
        retired_path.save_wire(w);
        w.u64(rhs.len() as u64);
        for snap in rhs {
            snap.save_wire(w);
        }
    }

    /// Deserializes into this predictor; the configuration must match the
    /// one the state was saved under.
    pub fn load_wire(&mut self, r: &mut WireReader<'_>) -> Result<(), String> {
        self.cascade.load_wire_with(r, &mut |r| {
            Ok(TraceData {
                dirs: r.u8()?,
                n_cond: r.u8()?,
                len: r.u8()?,
                kind_code: r.u8()?,
                next: r.addr()?,
            })
        })?;
        self.spec_path = PathHistory::load_wire(r)?;
        self.retired_path = PathHistory::load_wire(r)?;
        let n = r.u64()?;
        if n as usize > self.config.rhs_entries {
            return Err(format!("RHS depth {n} exceeds {}", self.config.rhs_entries));
        }
        self.rhs.clear();
        for _ in 0..n {
            self.rhs.push(PathSnapshot::load_wire(r)?);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn up(start: u64, dirs: u8, n_cond: u8, len: u8, next: u64) -> TraceUpdate {
        TraceUpdate {
            id: TraceId { start: Addr::new(start), dirs, n_cond },
            len,
            term: Some(BranchKind::Cond),
            next: Addr::new(next),
            mispredicted: false,
        }
    }

    #[test]
    fn learns_trace_shape() {
        let mut p = NextTracePredictor::new(TracePredictorConfig::table2());
        for _ in 0..3 {
            p.commit_trace(up(0x40_0000, 0b101, 3, 16, 0x40_0800));
        }
        let pr = p.predict(Addr::new(0x40_0000)).expect("hit");
        assert_eq!(pr.id.dirs, 0b101);
        assert_eq!(pr.id.n_cond, 3);
        assert_eq!(pr.len, 16);
        assert_eq!(pr.next, Addr::new(0x40_0800));
    }

    #[test]
    fn cold_miss() {
        let mut p = NextTracePredictor::new(TracePredictorConfig::table2());
        assert!(p.predict(Addr::new(0x1000)).is_none());
    }

    #[test]
    fn kind_codec_roundtrips() {
        for k in [
            None,
            Some(BranchKind::Cond),
            Some(BranchKind::Jump),
            Some(BranchKind::Call),
            Some(BranchKind::Return),
            Some(BranchKind::IndirectJump),
            Some(BranchKind::IndirectCall),
        ] {
            assert_eq!(decode_kind(encode_kind(k)), k);
        }
    }

    #[test]
    fn rhs_restores_caller_path_at_returns() {
        let mut p = NextTracePredictor::new(TracePredictorConfig::table2());
        // Build some caller path.
        p.notify_fetch(TraceId { start: Addr::new(0x10_0000), dirs: 0, n_cond: 0 }, None);
        let caller_path = p.snapshot();
        // A call-terminated trace pushes onto the RHS.
        p.notify_fetch(
            TraceId { start: Addr::new(0x20_0000), dirs: 1, n_cond: 1 },
            Some(BranchKind::Call),
        );
        let at_call = p.snapshot();
        // Callee traces scramble the path.
        for i in 0..5u64 {
            p.notify_fetch(
                TraceId { start: Addr::new(0x30_0000 + i * 64), dirs: 2, n_cond: 2 },
                None,
            );
        }
        assert_ne!(p.snapshot(), at_call);
        // Return-terminated trace pops the RHS: path back to the call point.
        p.notify_fetch(
            TraceId { start: Addr::new(0x31_0000), dirs: 0, n_cond: 0 },
            Some(BranchKind::Return),
        );
        assert_eq!(p.snapshot(), at_call);
        assert_ne!(p.snapshot(), caller_path, "RHS restores the post-call state");
    }

    #[test]
    fn rhs_depth_is_bounded() {
        let mut p = NextTracePredictor::new(TracePredictorConfig::table2());
        for i in 0..100u64 {
            p.notify_fetch(
                TraceId { start: Addr::new(0x40_0000 + i * 4), dirs: 0, n_cond: 0 },
                Some(BranchKind::Call),
            );
        }
        assert!(p.rhs.len() <= p.config().rhs_entries);
    }

    #[test]
    fn path_distinguishes_same_start_different_dirs_history() {
        let mut p = NextTracePredictor::new(TracePredictorConfig::table2());
        let shared = 0x40_0000u64;
        // Prefix longer than DOLC depth pins the path register.
        let wash = |p: &mut NextTracePredictor, salt: u64| {
            for i in 0..10 {
                p.commit_trace(up(0x60_0000 + salt * 0x1000 + i * 0x40, 0, 0, 8, 0));
            }
        };
        for _ in 0..6 {
            wash(&mut p, 1);
            p.commit_trace(up(shared, 0b11, 2, 12, 0x41_0000));
            wash(&mut p, 2);
            p.commit_trace(up(shared, 0b00, 2, 7, 0x42_0000));
        }
        // Recreate context 1 speculatively.
        p.restore(PathSnapshot::default());
        for i in 0..10 {
            p.notify_fetch(
                TraceId { start: Addr::new(0x60_0000 + 0x1000 + i * 0x40), dirs: 0, n_cond: 0 },
                Some(BranchKind::Cond),
            );
        }
        let pr = p.predict(Addr::new(shared)).expect("hit");
        assert_eq!(pr.id.dirs, 0b11);
        assert_eq!(pr.len, 12);
    }
}
