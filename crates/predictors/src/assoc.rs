//! Generic set-associative tagged table.
//!
//! All the tagged prediction structures (BTB, FTB, the stream and trace
//! predictor levels) share this shape: `sets × ways` slots, tag match,
//! LRU victim selection. Replacement *policy* differs per structure — the
//! stream/trace predictors use hysteresis counters (§3.2), the BTB/FTB use
//! plain LRU — so the table exposes the victim slot and lets the caller
//! decide.

use sfetch_isa::wire::{WireReader, WireWriter};

/// One slot of a set-associative table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Slot<T> {
    /// Whether the slot holds a valid entry.
    pub valid: bool,
    /// Tag of the resident entry.
    pub tag: u64,
    /// LRU timestamp (larger = more recently used).
    pub lru: u64,
    /// Payload.
    pub data: T,
}

/// A `sets × ways` tagged table with LRU bookkeeping.
///
/// ```
/// use sfetch_predictors::AssocTable;
///
/// let mut t: AssocTable<u32> = AssocTable::new(4, 2);
/// t.insert_lru(1, 0xabc, 7);
/// assert_eq!(t.lookup(1, 0xabc), Some(&mut 7));
/// assert_eq!(t.lookup(1, 0xdef), None);
/// ```
#[derive(Debug, Clone)]
pub struct AssocTable<T> {
    sets: usize,
    ways: usize,
    slots: Vec<Slot<T>>,
    tick: u64,
}

impl<T: Default + Clone> AssocTable<T> {
    /// Creates a table with `sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways == 0`.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets.is_power_of_two(), "sets must be a power of two");
        assert!(ways > 0, "need at least one way");
        AssocTable {
            sets,
            ways,
            slots: vec![
                Slot { valid: false, tag: 0, lru: 0, data: T::default() };
                sets * ways
            ],
            tick: 0,
        }
    }

    /// Number of sets.
    #[inline]
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    #[inline]
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Total entries.
    #[inline]
    pub fn entries(&self) -> usize {
        self.sets * self.ways
    }

    /// Bits needed to index a set.
    #[inline]
    pub fn index_bits(&self) -> u32 {
        self.sets.trailing_zeros()
    }

    #[inline]
    fn set_range(&self, index: u64) -> std::ops::Range<usize> {
        let set = (index as usize) & (self.sets - 1);
        set * self.ways..(set + 1) * self.ways
    }

    /// Looks up `(index, tag)`, refreshing LRU on hit.
    pub fn lookup(&mut self, index: u64, tag: u64) -> Option<&mut T> {
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(index);
        self.slots[range]
            .iter_mut()
            .find(|s| s.valid && s.tag == tag)
            .map(|s| {
                s.lru = tick;
                &mut s.data
            })
    }

    /// Looks up without touching LRU state (for probes/statistics).
    pub fn probe(&self, index: u64, tag: u64) -> Option<&T> {
        let range = self.set_range(index);
        self.slots[range].iter().find(|s| s.valid && s.tag == tag).map(|s| &s.data)
    }

    /// Returns the replacement-candidate slot for `(index, tag)`: an invalid
    /// way if one exists, otherwise the LRU way. The caller implements the
    /// policy (overwrite, hysteresis decrement, …).
    pub fn victim_slot(&mut self, index: u64) -> &mut Slot<T> {
        let range = self.set_range(index);
        let slots = &mut self.slots[range];
        let mut best = 0;
        for (i, s) in slots.iter().enumerate() {
            if !s.valid {
                best = i;
                break;
            }
            if s.lru < slots[best].lru {
                best = i;
            }
        }
        &mut slots[best]
    }

    /// Unconditionally inserts with LRU replacement; returns the evicted
    /// payload if a valid entry was displaced.
    pub fn insert_lru(&mut self, index: u64, tag: u64, data: T) -> Option<T> {
        self.tick += 1;
        let tick = self.tick;
        // Overwrite an existing entry with the same tag if present.
        if let Some(slot) = {
            let range = self.set_range(index);
            self.slots[range].iter_mut().find(|s| s.valid && s.tag == tag)
        } {
            let old = std::mem::replace(&mut slot.data, data);
            slot.lru = tick;
            return Some(old);
        }
        let victim = self.victim_slot(index);
        let evicted = victim.valid.then(|| victim.data.clone());
        victim.valid = true;
        victim.tag = tag;
        victim.lru = tick;
        victim.data = data;
        evicted
    }

    /// Marks the current tick on a slot obtained via [`AssocTable::victim_slot`].
    pub fn touch(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Invalidates the entry `(index, tag)` if present; returns the payload.
    pub fn invalidate(&mut self, index: u64, tag: u64) -> Option<T> {
        let range = self.set_range(index);
        self.slots[range].iter_mut().find(|s| s.valid && s.tag == tag).map(|s| {
            s.valid = false;
            s.data.clone()
        })
    }

    /// Count of valid entries (for tests / occupancy stats).
    pub fn occupancy(&self) -> usize {
        self.slots.iter().filter(|s| s.valid).count()
    }

    /// Serializes geometry, LRU clock and every slot; `enc` encodes one
    /// payload (warm-state banking).
    pub fn save_wire_with(
        &self,
        w: &mut WireWriter,
        enc: &mut dyn FnMut(&mut WireWriter, &T),
    ) {
        let Self { sets, ways, slots, tick } = self;
        w.u64(*sets as u64);
        w.u64(*ways as u64);
        w.u64(*tick);
        for s in slots {
            let Slot { valid, tag, lru, data } = s;
            w.bool(*valid);
            w.u64(*tag);
            w.u64(*lru);
            enc(w, data);
        }
    }

    /// Deserializes into this table; stored geometry must match.
    pub fn load_wire_with(
        &mut self,
        r: &mut WireReader<'_>,
        dec: &mut dyn FnMut(&mut WireReader<'_>) -> Result<T, String>,
    ) -> Result<(), String> {
        let sets = r.u64()?;
        let ways = r.u64()?;
        if sets != self.sets as u64 || ways != self.ways as u64 {
            return Err(format!(
                "table geometry {sets}x{ways} does not match {}x{}",
                self.sets, self.ways
            ));
        }
        self.tick = r.u64()?;
        for s in self.slots.iter_mut() {
            s.valid = r.bool()?;
            s.tag = r.u64()?;
            s.lru = r.u64()?;
            s.data = dec(r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss() {
        let mut t: AssocTable<u32> = AssocTable::new(8, 2);
        assert_eq!(t.lookup(3, 10), None);
        t.insert_lru(3, 10, 42);
        assert_eq!(t.lookup(3, 10), Some(&mut 42));
        assert_eq!(t.probe(3, 10), Some(&42));
        assert_eq!(t.lookup(3, 11), None);
    }

    #[test]
    fn same_tag_overwrites_in_place() {
        let mut t: AssocTable<u32> = AssocTable::new(4, 2);
        t.insert_lru(0, 5, 1);
        let old = t.insert_lru(0, 5, 2);
        assert_eq!(old, Some(1));
        assert_eq!(t.occupancy(), 1);
        assert_eq!(t.probe(0, 5), Some(&2));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut t: AssocTable<u32> = AssocTable::new(1, 2);
        t.insert_lru(0, 1, 11);
        t.insert_lru(0, 2, 22);
        // touch tag 1 so tag 2 is LRU
        assert!(t.lookup(0, 1).is_some());
        let evicted = t.insert_lru(0, 3, 33);
        assert_eq!(evicted, Some(22));
        assert!(t.probe(0, 1).is_some());
        assert!(t.probe(0, 2).is_none());
        assert!(t.probe(0, 3).is_some());
    }

    #[test]
    fn victim_prefers_invalid_ways() {
        let mut t: AssocTable<u32> = AssocTable::new(1, 4);
        t.insert_lru(0, 1, 1);
        let v = t.victim_slot(0);
        assert!(!v.valid, "an invalid way must be offered first");
    }

    #[test]
    fn sets_are_isolated() {
        let mut t: AssocTable<u32> = AssocTable::new(4, 1);
        t.insert_lru(0, 7, 70);
        t.insert_lru(1, 7, 71);
        assert_eq!(t.probe(0, 7), Some(&70));
        assert_eq!(t.probe(1, 7), Some(&71));
        // index wraps modulo sets
        assert_eq!(t.probe(4, 7), Some(&70));
    }

    #[test]
    fn invalidate_removes() {
        let mut t: AssocTable<u32> = AssocTable::new(2, 2);
        t.insert_lru(1, 9, 99);
        assert_eq!(t.invalidate(1, 9), Some(99));
        assert_eq!(t.probe(1, 9), None);
        assert_eq!(t.invalidate(1, 9), None);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_sets() {
        let _t: AssocTable<u32> = AssocTable::new(3, 2);
    }
}
