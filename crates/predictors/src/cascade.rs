//! The two-level *cascaded* predictor organization shared by the next
//! stream predictor (§3.2, Fig. 5) and the next trace predictor (Table 2).
//!
//! Level 1 is indexed by the current fetch address alone; level 2 by a DOLC
//! hash of the path of previous unit starting addresses. Lookups prefer the
//! path-correlated table. Entries carry a 2-bit *hysteresis* counter used
//! only for replacement: matching updates strengthen an entry, conflicting
//! updates weaken it, and it is replaced when the counter reaches zero —
//! this is what lets the tables retain **overlapping** units instead of
//! splitting them (unlike the FTB).
//!
//! Insertion policy (paper §3.2):
//! * a unit seen for the first time is inserted in **both** tables;
//! * later appearances update only tables where it still resides;
//! * a unit present only in the first table is *upgraded* to the second
//!   when it was mispredicted — units that do not need path correlation
//!   never pollute the second table.

use sfetch_isa::wire::{WireReader, WireWriter};
use sfetch_isa::Addr;

use crate::assoc::AssocTable;
use crate::counters::Counter2;
use crate::history::{Dolc, PathHistory};

/// A payload with its hysteresis counter.
#[derive(Debug, Clone, Default, PartialEq)]
struct Hyst<T> {
    data: T,
    conf: Counter2,
}

/// Statistics of one cascade.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CascadeStats {
    /// Total predictions requested.
    pub lookups: u64,
    /// Lookups answered by the path-indexed second level.
    pub hits_second: u64,
    /// Lookups answered by the address-indexed first level only.
    pub hits_first: u64,
    /// Lookups that missed both levels.
    pub misses: u64,
}

/// A two-level cascaded, hysteresis-replaced predictor pair.
#[derive(Debug, Clone)]
pub struct Cascade<T> {
    first: AssocTable<Hyst<T>>,
    second: AssocTable<Hyst<T>>,
    dolc: Dolc,
    stats: CascadeStats,
}

impl<T: Default + Clone + PartialEq> Cascade<T> {
    /// Creates a cascade: `first` as `(entries, ways)`, `second` likewise,
    /// with the given DOLC geometry for the second level.
    pub fn new(first: (usize, usize), second: (usize, usize), dolc: Dolc) -> Self {
        Cascade {
            first: AssocTable::new(first.0 / first.1, first.1),
            second: AssocTable::new(second.0 / second.1, second.1),
            dolc,
            stats: CascadeStats::default(),
        }
    }

    #[inline]
    fn tag(addr: Addr) -> u64 {
        addr.get() >> 2
    }

    #[inline]
    fn first_index(&self, addr: Addr) -> u64 {
        addr.get() >> 2
    }

    #[inline]
    fn second_index(&self, path: &PathHistory, addr: Addr) -> u64 {
        path.index(&self.dolc, addr, 32)
    }

    /// Looks up a prediction for a unit starting at `addr` under the
    /// (speculative) `path`. Returns the payload and whether it came from
    /// the path-correlated level.
    pub fn predict(&mut self, path: &PathHistory, addr: Addr) -> Option<(T, bool)> {
        self.stats.lookups += 1;
        let tag = Self::tag(addr);
        let i2 = self.second_index(path, addr);
        if let Some(h) = self.second.lookup(i2, tag) {
            self.stats.hits_second += 1;
            return Some((h.data.clone(), true));
        }
        let i1 = self.first_index(addr);
        if let Some(h) = self.first.lookup(i1, tag) {
            self.stats.hits_first += 1;
            return Some((h.data.clone(), false));
        }
        self.stats.misses += 1;
        None
    }

    /// Side-effect-free lookup: like [`Cascade::predict`] but counts no
    /// statistics and refreshes no LRU state. Used by functional warming
    /// to ask "what would the front-end have predicted here?" without
    /// perturbing the tables it is warming.
    pub fn probe(&self, path: &PathHistory, addr: Addr) -> Option<(T, bool)> {
        let tag = Self::tag(addr);
        if let Some(h) = self.second.probe(self.second_index(path, addr), tag) {
            return Some((h.data.clone(), true));
        }
        self.first.probe(self.first_index(addr), tag).map(|h| (h.data.clone(), false))
    }

    /// Commit-time update with the observed unit `data` starting at `addr`,
    /// under the **retired** path (the history state *before* this unit).
    ///
    /// `mispredicted` reports whether the front-end mispredicted within the
    /// unit — it gates the upgrade into the second level.
    pub fn update(&mut self, retired_path: &PathHistory, addr: Addr, data: T, mispredicted: bool) {
        let tag = Self::tag(addr);
        let i1 = self.first_index(addr);
        let i2 = self.second_index(retired_path, addr);

        let mut first_seen = true;
        if let Some(h) = self.first.lookup(i1, tag) {
            first_seen = false;
            hyst_update(h, &data);
        } else {
            hyst_install(&mut self.first, i1, tag, &data);
        }

        if let Some(h) = self.second.lookup(i2, tag) {
            hyst_update(h, &data);
        } else if first_seen || mispredicted {
            hyst_install(&mut self.second, i2, tag, &data);
        }
    }

    /// Cascade statistics.
    pub fn stats(&self) -> CascadeStats {
        self.stats
    }

    /// Entries in (first, second) levels.
    pub fn entries(&self) -> (usize, usize) {
        (self.first.entries(), self.second.entries())
    }

    /// Storage estimate: `payload_bits` per entry plus tag (~20), hysteresis
    /// (2) and LRU (2) bits.
    pub fn storage_bits(&self, payload_bits: u64) -> u64 {
        (self.first.entries() + self.second.entries()) as u64 * (payload_bits + 20 + 2 + 2)
    }

    /// Serializes both levels and the statistics; `enc` encodes one payload
    /// (warm-state banking).
    pub fn save_wire_with(
        &self,
        w: &mut WireWriter,
        enc: &mut dyn FnMut(&mut WireWriter, &T),
    ) {
        let Self { first, second, dolc: _, stats } = self;
        first.save_wire_with(w, &mut |w, h| {
            enc(w, &h.data);
            h.conf.save_wire(w);
        });
        second.save_wire_with(w, &mut |w, h| {
            enc(w, &h.data);
            h.conf.save_wire(w);
        });
        let CascadeStats { lookups, hits_second, hits_first, misses } = stats;
        w.u64(*lookups);
        w.u64(*hits_second);
        w.u64(*hits_first);
        w.u64(*misses);
    }

    /// Deserializes into this cascade; geometries must match.
    pub fn load_wire_with(
        &mut self,
        r: &mut WireReader<'_>,
        dec: &mut dyn FnMut(&mut WireReader<'_>) -> Result<T, String>,
    ) -> Result<(), String> {
        self.first.load_wire_with(r, &mut |r| {
            let data = dec(r)?;
            let conf = Counter2::load_wire(r)?;
            Ok(Hyst { data, conf })
        })?;
        self.second.load_wire_with(r, &mut |r| {
            let data = dec(r)?;
            let conf = Counter2::load_wire(r)?;
            Ok(Hyst { data, conf })
        })?;
        self.stats = CascadeStats {
            lookups: r.u64()?,
            hits_second: r.u64()?,
            hits_first: r.u64()?,
            misses: r.u64()?,
        };
        Ok(())
    }
}

/// Hysteresis data update: agreement strengthens, disagreement weakens and
/// replaces at zero (paper §3.2 replacement policy).
fn hyst_update<T: PartialEq + Clone>(h: &mut Hyst<T>, data: &T) {
    if h.data == *data {
        h.conf.inc();
    } else {
        h.conf.dec();
        if h.conf.is_zero() {
            h.data = data.clone();
            h.conf = Counter2::new(1);
        }
    }
}

/// Hysteresis insertion: an invalid way installs immediately; otherwise the
/// victim's confidence is decremented and the entry only replaced at zero.
fn hyst_install<T: Default + Clone + PartialEq>(
    table: &mut AssocTable<Hyst<T>>,
    index: u64,
    tag: u64,
    data: &T,
) {
    let tick = table.touch();
    let victim = table.victim_slot(index);
    if !victim.valid {
        victim.valid = true;
        victim.tag = tag;
        victim.lru = tick;
        victim.data = Hyst { data: data.clone(), conf: Counter2::new(1) };
        return;
    }
    victim.data.conf.dec();
    if victim.data.conf.is_zero() {
        victim.tag = tag;
        victim.lru = tick;
        victim.data = Hyst { data: data.clone(), conf: Counter2::new(1) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dolc() -> Dolc {
        Dolc::STREAM
    }

    fn path_with(addrs: &[u64]) -> PathHistory {
        let mut p = PathHistory::new();
        for &a in addrs {
            p.push(&dolc(), Addr::new(a));
        }
        p
    }

    #[test]
    fn miss_then_learn_then_hit() {
        let mut c: Cascade<u32> = Cascade::new((64, 4), (128, 4), dolc());
        let path = path_with(&[0x100, 0x200]);
        let a = Addr::new(0x400000);
        assert_eq!(c.predict(&path, a), None);
        c.update(&path, a, 42, false);
        assert_eq!(c.predict(&path, a), Some((42, true)), "first insert goes to both levels");
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn path_correlation_separates_contexts() {
        let mut c: Cascade<u32> = Cascade::new((64, 4), (256, 4), dolc());
        let a = Addr::new(0x400000);
        let p1 = path_with(&[0x111_000, 0x222_000]);
        let p2 = path_with(&[0x333_000, 0x444_000]);
        // Same start address, two different follow-ups depending on path.
        for _ in 0..6 {
            c.update(&p1, a, 1, true);
            c.update(&p2, a, 2, true);
        }
        assert_eq!(c.predict(&p1, a).map(|x| x.0), Some(1));
        assert_eq!(c.predict(&p2, a).map(|x| x.0), Some(2));
    }

    #[test]
    fn hysteresis_resists_transient_changes() {
        let mut c: Cascade<u32> = Cascade::new((64, 1), (64, 1), dolc());
        let path = path_with(&[0x10]);
        let a = Addr::new(0x400100);
        for _ in 0..4 {
            c.update(&path, a, 7, false); // conf saturates at 3
        }
        c.update(&path, a, 9, false); // one conflicting observation
        assert_eq!(c.predict(&path, a).map(|x| x.0), Some(7), "hysteresis keeps stable data");
        for _ in 0..4 {
            c.update(&path, a, 9, false);
        }
        assert_eq!(c.predict(&path, a).map(|x| x.0), Some(9), "persistent change wins");
    }

    #[test]
    fn first_level_answers_when_path_unseen() {
        let mut c: Cascade<u32> = Cascade::new((64, 4), (256, 4), dolc());
        let a = Addr::new(0x400200);
        let train_path = path_with(&[0x1_000, 0x2_000]);
        c.update(&train_path, a, 5, false);
        let other_path = path_with(&[0x7_000, 0x8_000]);
        let (v, from_second) = c.predict(&other_path, a).expect("first level hit");
        assert_eq!(v, 5);
        assert!(!from_second, "unknown path must fall back to the address-indexed level");
    }

    #[test]
    fn stable_units_are_not_reinserted_into_second_level() {
        let mut c: Cascade<u32> = Cascade::new((64, 4), (64, 1), dolc());
        let a = Addr::new(0x400300);
        let p = path_with(&[0x5_000]);
        c.update(&p, a, 3, false); // first appearance: both levels
        // Evict it from the second level by filling the set with a conflicting
        // unit on the same path index.
        let conflicting = Addr::new(0x400300 + (64 << 2)); // same L1 set is fine
        for _ in 0..8 {
            c.update(&p, conflicting, 8, true);
        }
        // Now further correct (non-mispredicted) updates must not re-enter L2.
        let before = c.predict(&p, a);
        if let Some((_, true)) = before {
            // it survived eviction; nothing to assert
            return;
        }
        c.update(&p, a, 3, false);
        if let Some((v, from_second)) = c.predict(&p, a) {
            assert_eq!(v, 3);
            assert!(!from_second, "no upgrade without misprediction");
        }
    }

    #[test]
    fn storage_model_scales_with_entries() {
        let c: Cascade<u32> = Cascade::new((1024, 4), (6144, 3), dolc());
        assert_eq!(c.entries(), (1024, 6144));
        assert!(c.storage_bits(64) > c.storage_bits(32));
    }
}
