//! Return address stack with shadow top-of-stack repair.
//!
//! The paper (§3.2): *"The RAS is updated speculatively as guided by the
//! branch type field, and a shadow copy of the top of the stack is kept with
//! each branch instruction. When a misprediction is detected, the stack
//! index and the top of the stack are restored to their correct values."*
//!
//! This is the classic cheap repair: it fixes the common single-push/pop
//! divergence exactly and deeper corruption approximately — the same
//! fidelity the hardware scheme achieves.

use sfetch_isa::wire::{WireReader, WireWriter};
use sfetch_isa::Addr;

/// Snapshot carried by each in-flight branch: stack index + top value.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RasSnapshot {
    tos: u32,
    top: Addr,
}

/// A circular return address stack.
#[derive(Debug, Clone)]
pub struct Ras {
    stack: Vec<Addr>,
    tos: u32,
}

impl Ras {
    /// Creates a RAS with `entries` slots (Table 2 uses 8).
    ///
    /// # Panics
    ///
    /// Panics if `entries == 0`.
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0, "RAS needs at least one entry");
        Ras { stack: vec![Addr::NULL; entries], tos: 0 }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.stack.len()
    }

    /// Whether the stack has zero capacity (never true; satisfies clippy's
    /// `len`/`is_empty` pairing).
    pub fn is_empty(&self) -> bool {
        self.stack.is_empty()
    }

    /// Pushes a return address (speculatively, at predict time for calls).
    pub fn push(&mut self, addr: Addr) {
        self.tos = (self.tos + 1) % self.stack.len() as u32;
        self.stack[self.tos as usize] = addr;
    }

    /// Pops the predicted return target (at predict time for returns).
    pub fn pop(&mut self) -> Addr {
        let v = self.stack[self.tos as usize];
        self.tos = (self.tos + self.stack.len() as u32 - 1) % self.stack.len() as u32;
        v
    }

    /// Current top value without popping.
    pub fn top(&self) -> Addr {
        self.stack[self.tos as usize]
    }

    /// Snapshot for a branch checkpoint.
    pub fn snapshot(&self) -> RasSnapshot {
        RasSnapshot { tos: self.tos, top: self.stack[self.tos as usize] }
    }

    /// Restores index and top-of-stack from a checkpoint (misprediction
    /// recovery).
    pub fn restore(&mut self, snap: RasSnapshot) {
        self.tos = snap.tos % self.stack.len() as u32;
        self.stack[self.tos as usize] = snap.top;
    }

    /// Storage estimate in bits (30-bit addresses plus the pointer).
    pub fn storage_bits(&self) -> u64 {
        self.stack.len() as u64 * 30 + 8
    }

    /// Serializes the whole stack (warm-state banking).
    pub fn save_wire(&self, w: &mut WireWriter) {
        let Self { stack, tos } = self;
        w.u64(stack.len() as u64);
        for a in stack {
            w.addr(*a);
        }
        w.u32(*tos);
    }

    /// Deserializes into this stack; the stored depth must match.
    pub fn load_wire(&mut self, r: &mut WireReader<'_>) -> Result<(), String> {
        let n = r.u64()?;
        if n != self.stack.len() as u64 {
            return Err(format!("RAS depth {n} does not match {}", self.stack.len()));
        }
        for a in self.stack.iter_mut() {
            *a = r.addr()?;
        }
        let tos = r.u32()?;
        if tos as usize >= self.stack.len() {
            return Err(format!("RAS tos {tos} out of range"));
        }
        self.tos = tos;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_lifo() {
        let mut ras = Ras::new(8);
        ras.push(Addr::new(0x100));
        ras.push(Addr::new(0x200));
        assert_eq!(ras.pop(), Addr::new(0x200));
        assert_eq!(ras.pop(), Addr::new(0x100));
    }

    #[test]
    fn wraps_when_overflowing() {
        let mut ras = Ras::new(2);
        ras.push(Addr::new(1 << 2));
        ras.push(Addr::new(2 << 2));
        ras.push(Addr::new(3 << 2)); // overwrites the oldest
        assert_eq!(ras.pop(), Addr::new(3 << 2));
        assert_eq!(ras.pop(), Addr::new(2 << 2));
        // Oldest was lost to wrap-around.
        assert_ne!(ras.pop(), Addr::new(1 << 2));
    }

    #[test]
    fn snapshot_repairs_single_divergence() {
        let mut ras = Ras::new(8);
        ras.push(Addr::new(0x100));
        let snap = ras.snapshot();
        // Wrong path: pops the good entry then pushes junk.
        ras.pop();
        ras.push(Addr::new(0xbad));
        ras.restore(snap);
        assert_eq!(ras.pop(), Addr::new(0x100), "repair must restore the top");
    }

    #[test]
    fn snapshot_repairs_wrong_path_push() {
        let mut ras = Ras::new(8);
        ras.push(Addr::new(0x100));
        ras.push(Addr::new(0x200));
        let snap = ras.snapshot();
        ras.push(Addr::new(0xbad));
        ras.restore(snap);
        assert_eq!(ras.pop(), Addr::new(0x200));
        assert_eq!(ras.pop(), Addr::new(0x100));
    }

    #[test]
    fn top_peeks_without_mutation() {
        let mut ras = Ras::new(4);
        ras.push(Addr::new(0x42 << 2));
        assert_eq!(ras.top(), Addr::new(0x42 << 2));
        assert_eq!(ras.top(), ras.pop());
        assert!(!ras.is_empty());
        assert_eq!(ras.len(), 4);
    }
}
