//! Branch target buffer.

use sfetch_isa::wire::{WireReader, WireWriter};
use sfetch_isa::{Addr, BranchKind};

use crate::assoc::AssocTable;

/// Payload of a BTB entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BtbEntry {
    /// Predicted target address.
    pub target: Addr,
    /// Kind of the branch (drives RAS usage and fetch termination).
    pub kind: BranchKind,
}

impl Default for BtbEntry {
    fn default() -> Self {
        BtbEntry { target: Addr::NULL, kind: BranchKind::Jump }
    }
}

/// A set-associative branch target buffer.
///
/// Following Calder & Grunwald (and §2.1), **only taken branches are
/// inserted**: a branch that has never been taken does not occupy a slot and
/// is implicitly predicted not-taken, which is also how the EV8 front-end
/// *identifies* branches — a BTB miss means "not a branch" at fetch time.
///
/// ```
/// use sfetch_predictors::{Btb, BtbEntry};
/// use sfetch_isa::{Addr, BranchKind};
///
/// let mut btb = Btb::new(512, 4);
/// btb.update(Addr::new(0x400100), Addr::new(0x400200), BranchKind::Cond);
/// let hit = btb.lookup(Addr::new(0x400100)).expect("hit");
/// assert_eq!(hit.target, Addr::new(0x400200));
/// ```
#[derive(Debug, Clone)]
pub struct Btb {
    table: AssocTable<BtbEntry>,
    lookups: u64,
    hits: u64,
}

impl Btb {
    /// Creates a BTB with `entries` total entries and `ways` associativity.
    ///
    /// # Panics
    ///
    /// Panics if `entries / ways` is not a power of two.
    pub fn new(entries: usize, ways: usize) -> Self {
        Btb { table: AssocTable::new(entries / ways, ways), lookups: 0, hits: 0 }
    }

    #[inline]
    fn split(&self, pc: Addr) -> (u64, u64) {
        let word = pc.get() >> 2;
        (word, word >> self.table.index_bits())
    }

    /// Looks up `pc`; a hit identifies a (previously taken) branch and its
    /// last target.
    pub fn lookup(&mut self, pc: Addr) -> Option<BtbEntry> {
        self.lookups += 1;
        let (idx, tag) = self.split(pc);
        let hit = self.table.lookup(idx, tag).map(|e| *e);
        self.hits += u64::from(hit.is_some());
        hit
    }

    /// Checks residency without updating LRU or hit statistics (used by
    /// commit logic to ask "was this branch identified at fetch?").
    pub fn probe(&self, pc: Addr) -> Option<BtbEntry> {
        let (idx, tag) = self.split(pc);
        self.table.probe(idx, tag).copied()
    }

    /// Commit-time update for a taken branch: insert or refresh the entry.
    pub fn update(&mut self, pc: Addr, target: Addr, kind: BranchKind) {
        let (idx, tag) = self.split(pc);
        if let Some(e) = self.table.lookup(idx, tag) {
            e.target = target;
            e.kind = kind;
        } else {
            self.table.insert_lru(idx, tag, BtbEntry { target, kind });
        }
    }

    /// Hit rate over all lookups so far.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// Storage estimate in bits: tag (~20) + target (30) + kind (3) per
    /// entry, plus LRU.
    pub fn storage_bits(&self) -> u64 {
        (self.table.entries() as u64) * (20 + 30 + 3 + 2)
    }

    /// Serializes table contents and hit statistics (warm-state banking).
    pub fn save_wire(&self, w: &mut WireWriter) {
        let Self { table, lookups, hits } = self;
        table.save_wire_with(w, &mut |w, e| {
            w.addr(e.target);
            w.branch_kind(Some(e.kind));
        });
        w.u64(*lookups);
        w.u64(*hits);
    }

    /// Deserializes into this BTB; geometry must match.
    pub fn load_wire(&mut self, r: &mut WireReader<'_>) -> Result<(), String> {
        self.table.load_wire_with(r, &mut |r| {
            let target = r.addr()?;
            let kind =
                r.branch_kind()?.ok_or_else(|| "BTB entry without a kind".to_string())?;
            Ok(BtbEntry { target, kind })
        })?;
        self.lookups = r.u64()?;
        self.hits = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_until_trained() {
        let mut btb = Btb::new(64, 4);
        assert!(btb.lookup(Addr::new(0x1000)).is_none());
        btb.update(Addr::new(0x1000), Addr::new(0x2000), BranchKind::Cond);
        let e = btb.lookup(Addr::new(0x1000)).expect("hit");
        assert_eq!(e.target, Addr::new(0x2000));
        assert_eq!(e.kind, BranchKind::Cond);
        assert!(btb.hit_rate() > 0.0);
    }

    #[test]
    fn update_refreshes_target() {
        let mut btb = Btb::new(64, 2);
        btb.update(Addr::new(0x1000), Addr::new(0x2000), BranchKind::IndirectJump);
        btb.update(Addr::new(0x1000), Addr::new(0x3000), BranchKind::IndirectJump);
        assert_eq!(btb.lookup(Addr::new(0x1000)).expect("hit").target, Addr::new(0x3000));
    }

    #[test]
    fn distinct_pcs_do_not_alias_with_tags() {
        let mut btb = Btb::new(16, 1);
        // Same set (16 sets, pc>>2 & 15), different tags.
        btb.update(Addr::new(0x40), Addr::new(0xaaaa), BranchKind::Jump);
        assert!(btb.lookup(Addr::new(0x40 + 16 * 4)).is_none(), "tag must reject alias");
    }

    #[test]
    fn storage_is_positive() {
        assert!(Btb::new(2048, 4).storage_bits() > 0);
    }
}
