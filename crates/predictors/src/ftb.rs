//! The Fetch Target Buffer (Reinman, Austin, Calder — §2.1).
//!
//! An FTB entry describes a *variable-length fetch block*: a run of
//! instructions from a fetch address up to its terminating branch. Only
//! branches that have **ever been taken** terminate blocks, so strongly
//! biased not-taken branches stay embedded and widen fetch. Unlike the
//! stream predictor's tables, the FTB does **not** store overlapping
//! blocks: when an embedded branch turns out taken, the block is split —
//! the entry is overwritten with the shorter block (§2.1).

use sfetch_isa::wire::{WireReader, WireWriter};
use sfetch_isa::{Addr, BranchKind};

use crate::assoc::AssocTable;

/// Payload of an FTB entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FtbEntry {
    /// Fetch-block length in instructions, including the terminator.
    pub len: u32,
    /// Kind of the terminating branch.
    pub kind: BranchKind,
    /// Last observed target of the terminating branch.
    pub target: Addr,
}

impl Default for FtbEntry {
    fn default() -> Self {
        FtbEntry { len: 0, kind: BranchKind::Jump, target: Addr::NULL }
    }
}

/// A set-associative fetch target buffer.
///
/// ```
/// use sfetch_predictors::{Ftb, FtbEntry};
/// use sfetch_isa::{Addr, BranchKind};
///
/// let mut ftb = Ftb::new(2048, 4);
/// ftb.update(Addr::new(0x400000), FtbEntry { len: 12, kind: BranchKind::Cond, target: Addr::new(0x400100) });
/// assert_eq!(ftb.lookup(Addr::new(0x400000)).expect("hit").len, 12);
/// ```
#[derive(Debug, Clone)]
pub struct Ftb {
    table: AssocTable<FtbEntry>,
    lookups: u64,
    hits: u64,
}

impl Ftb {
    /// Creates an FTB with `entries` total entries, `ways` associativity.
    ///
    /// # Panics
    ///
    /// Panics if `entries / ways` is not a power of two.
    pub fn new(entries: usize, ways: usize) -> Self {
        Ftb { table: AssocTable::new(entries / ways, ways), lookups: 0, hits: 0 }
    }

    #[inline]
    fn split(&self, pc: Addr) -> (u64, u64) {
        let word = pc.get() >> 2;
        (word, word >> self.table.index_bits())
    }

    /// Looks up the fetch block starting at `pc`.
    pub fn lookup(&mut self, pc: Addr) -> Option<FtbEntry> {
        self.lookups += 1;
        let (idx, tag) = self.split(pc);
        let hit = self.table.lookup(idx, tag).copied();
        self.hits += u64::from(hit.is_some());
        hit
    }

    /// Checks residency without updating LRU or hit statistics.
    pub fn probe(&self, pc: Addr) -> Option<FtbEntry> {
        let (idx, tag) = self.split(pc);
        self.table.probe(idx, tag).copied()
    }

    /// Commit-time upsert of the block starting at `start`.
    ///
    /// A shorter `len` than the resident entry models the FTB *split* on a
    /// newly-taken embedded branch; a refreshed `target` tracks indirect
    /// branches.
    pub fn update(&mut self, start: Addr, entry: FtbEntry) {
        let (idx, tag) = self.split(start);
        if let Some(e) = self.table.lookup(idx, tag) {
            *e = entry;
        } else {
            self.table.insert_lru(idx, tag, entry);
        }
    }

    /// FTB hit rate so far.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// Storage estimate in bits: tag (~20) + length (6) + kind (3) +
    /// target (30) + LRU (2) per entry.
    pub fn storage_bits(&self) -> u64 {
        self.table.entries() as u64 * (20 + 6 + 3 + 30 + 2)
    }

    /// Serializes table contents and hit statistics (warm-state banking).
    pub fn save_wire(&self, w: &mut WireWriter) {
        let Self { table, lookups, hits } = self;
        table.save_wire_with(w, &mut |w, e| {
            let FtbEntry { len, kind, target } = e;
            w.u32(*len);
            w.branch_kind(Some(*kind));
            w.addr(*target);
        });
        w.u64(*lookups);
        w.u64(*hits);
    }

    /// Deserializes into this FTB; geometry must match.
    pub fn load_wire(&mut self, r: &mut WireReader<'_>) -> Result<(), String> {
        self.table.load_wire_with(r, &mut |r| {
            let len = r.u32()?;
            let kind =
                r.branch_kind()?.ok_or_else(|| "FTB entry without a kind".to_string())?;
            let target = r.addr()?;
            Ok(FtbEntry { len, kind, target })
        })?;
        self.lookups = r.u64()?;
        self.hits = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upsert_overwrites_with_split_block() {
        let mut ftb = Ftb::new(128, 4);
        let s = Addr::new(0x400000);
        ftb.update(s, FtbEntry { len: 20, kind: BranchKind::Cond, target: Addr::new(0x401000) });
        // Embedded branch at +8 turned out taken: split.
        ftb.update(s, FtbEntry { len: 8, kind: BranchKind::Cond, target: Addr::new(0x402000) });
        let e = ftb.lookup(s).expect("hit");
        assert_eq!(e.len, 8);
        assert_eq!(e.target, Addr::new(0x402000));
    }

    #[test]
    fn miss_on_unseen_block() {
        let mut ftb = Ftb::new(128, 4);
        assert!(ftb.lookup(Addr::new(0x123400)).is_none());
        assert_eq!(ftb.hit_rate(), 0.0);
    }

    #[test]
    fn capacity_eviction_is_lru() {
        let mut ftb = Ftb::new(2, 2); // one set, two ways
        let mk = |i: u64| Addr::new(0x400000 + i * 8); // same set (1 set)
        ftb.update(mk(0), FtbEntry { len: 1, kind: BranchKind::Jump, target: Addr::NULL });
        ftb.update(mk(1), FtbEntry { len: 2, kind: BranchKind::Jump, target: Addr::NULL });
        assert!(ftb.lookup(mk(0)).is_some()); // touch 0; 1 becomes LRU
        ftb.update(mk(2), FtbEntry { len: 3, kind: BranchKind::Jump, target: Addr::NULL });
        assert!(ftb.lookup(mk(1)).is_none(), "LRU block evicted");
        assert!(ftb.lookup(mk(0)).is_some());
        assert!(ftb.lookup(mk(2)).is_some());
    }
}
