//! Saturating counters.

use sfetch_isa::wire::{WireReader, WireWriter};

/// A 2-bit saturating counter (0..=3).
///
/// Used as the direction state of bimodal/gshare/2bcgskew tables and as the
/// *hysteresis* replacement counter of the next-stream and next-trace
/// predictor entries (§3.2: "a 2-bit saturating counter used for the
/// replacement policy").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Counter2(u8);

impl Counter2 {
    /// Weakly not-taken initial state.
    pub const WEAK_NT: Counter2 = Counter2(1);
    /// Weakly taken initial state.
    pub const WEAK_T: Counter2 = Counter2(2);

    /// Creates a counter clamped to 0..=3.
    #[inline]
    pub const fn new(v: u8) -> Self {
        Counter2(if v > 3 { 3 } else { v })
    }

    /// Raw value (0..=3).
    #[inline]
    pub const fn get(self) -> u8 {
        self.0
    }

    /// Predicted direction: the upper half predicts taken.
    #[inline]
    pub const fn taken(self) -> bool {
        self.0 >= 2
    }

    /// Saturating increment.
    #[inline]
    pub fn inc(&mut self) {
        if self.0 < 3 {
            self.0 += 1;
        }
    }

    /// Saturating decrement.
    #[inline]
    pub fn dec(&mut self) {
        if self.0 > 0 {
            self.0 -= 1;
        }
    }

    /// Moves one step towards `taken`.
    #[inline]
    pub fn train(&mut self, taken: bool) {
        if taken {
            self.inc()
        } else {
            self.dec()
        }
    }

    /// Whether the counter has reached zero (hysteresis exhausted).
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Serializes this counter as one byte.
    pub fn save_wire(self, w: &mut WireWriter) {
        w.u8(self.0);
    }

    /// Deserializes a counter, rejecting out-of-range bytes.
    pub fn load_wire(r: &mut WireReader<'_>) -> Result<Self, String> {
        let v = r.u8()?;
        if v > 3 {
            return Err(format!("counter value {v} out of range"));
        }
        Ok(Counter2(v))
    }

    /// Serializes a counter table as a length-prefixed byte run.
    pub fn save_slice(w: &mut WireWriter, cs: &[Counter2]) {
        let bytes: Vec<u8> = cs.iter().map(|c| c.0).collect();
        w.bytes(&bytes);
    }

    /// Deserializes a counter table into `cs`; the stored length must match.
    pub fn load_slice(r: &mut WireReader<'_>, cs: &mut [Counter2]) -> Result<(), String> {
        let bytes = r.bytes()?;
        if bytes.len() != cs.len() {
            return Err(format!(
                "counter table length {} does not match {}",
                bytes.len(),
                cs.len()
            ));
        }
        for (dst, &v) in cs.iter_mut().zip(bytes) {
            if v > 3 {
                return Err(format!("counter value {v} out of range"));
            }
            *dst = Counter2(v);
        }
        Ok(())
    }
}

impl Default for Counter2 {
    fn default() -> Self {
        Counter2::WEAK_NT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturates_at_both_ends() {
        let mut c = Counter2::new(0);
        c.dec();
        assert_eq!(c.get(), 0);
        for _ in 0..10 {
            c.inc();
        }
        assert_eq!(c.get(), 3);
    }

    #[test]
    fn direction_threshold() {
        assert!(!Counter2::new(0).taken());
        assert!(!Counter2::new(1).taken());
        assert!(Counter2::new(2).taken());
        assert!(Counter2::new(3).taken());
    }

    #[test]
    fn train_moves_towards_outcome() {
        let mut c = Counter2::WEAK_NT;
        c.train(true);
        assert!(c.taken());
        c.train(false);
        c.train(false);
        assert!(!c.taken());
    }

    #[test]
    fn new_clamps() {
        assert_eq!(Counter2::new(9).get(), 3);
        assert!(Counter2::new(9).taken());
        assert!(Counter2::new(0).is_zero());
    }
}
