//! Instruction-stream extraction (the paper's §1 definition).
//!
//! > *"An instruction stream is a sequential run of instructions, from the
//! > target of a taken branch, to the next taken branch."*
//!
//! A stream is identified by its **starting address and length** alone; the
//! behaviour of embedded branches is implicit (all not taken, terminator
//! taken). [`StreamExtractor`] segments a committed-path trace into streams;
//! it is both the analysis tool behind the paper's workload characterization
//! (Table 1's "size" column) and the reference implementation of the
//! commit-side *stream builder* the fetch engine uses to train its
//! next-stream predictor.

use sfetch_isa::{Addr, BranchKind};
use sfetch_tab::OpenMap;

use crate::record::DynInst;

/// Maximum stream length in instructions; longer sequential runs are split,
/// matching the bounded length field of a next-stream-predictor entry.
pub const MAX_STREAM_LEN: u32 = 64;

/// One extracted instruction stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Stream {
    /// First instruction address (target of the previous taken branch).
    pub start: Addr,
    /// Length in instructions, including the terminating branch.
    pub len: u32,
    /// Kind of the terminating taken branch, or `None` when the stream was
    /// split by the [`MAX_STREAM_LEN`] cap (a *sequential* continuation).
    pub term: Option<BranchKind>,
    /// Start address of the following stream.
    pub next: Addr,
}

/// Online stream segmentation of a dynamic instruction sequence.
///
/// ```
/// use sfetch_trace::StreamExtractor;
///
/// let mut ex = StreamExtractor::new();
/// // feed DynInst records with ex.push(&inst) and collect returned streams…
/// assert_eq!(ex.in_flight_len(), 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StreamExtractor {
    start: Option<Addr>,
    len: u32,
}

impl StreamExtractor {
    /// Creates an extractor; the first pushed instruction opens a stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Instructions accumulated in the currently open stream.
    pub fn in_flight_len(&self) -> u32 {
        self.len
    }

    /// Feeds one committed instruction; returns the completed stream if this
    /// instruction closed one.
    pub fn push(&mut self, d: &DynInst) -> Option<Stream> {
        let start = *self.start.get_or_insert(d.pc);
        self.len += 1;
        if let Some(c) = d.control {
            if c.taken {
                let s = Stream { start, len: self.len, term: Some(c.kind), next: c.next_pc };
                self.start = Some(c.next_pc);
                self.len = 0;
                return Some(s);
            }
        }
        if self.len >= MAX_STREAM_LEN {
            let next = d.next_pc();
            let s = Stream { start, len: self.len, term: None, next };
            self.start = Some(next);
            self.len = 0;
            return Some(s);
        }
        None
    }

    /// Restarts stream accumulation at `addr` — used by the commit-side
    /// builder to begin a *partial stream* at a misprediction target
    /// (paper §1: partial streams keep stream semantics across recoveries).
    pub fn restart_at(&mut self, addr: Addr) {
        self.start = Some(addr);
        self.len = 0;
    }
}

/// Aggregate statistics over extracted streams.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StreamStats {
    /// Number of streams observed.
    pub count: u64,
    /// Total instructions covered.
    pub insts: u64,
    /// Longest stream seen.
    pub max_len: u32,
    /// Histogram over length buckets `1-8, 9-16, 17-24, 25-32, 33+`.
    pub hist: [u64; 5],
    // Open-addressed: hit once per extracted stream on the commit path.
    unique: OpenMap<(Addr, u32), u64>,
}

impl StreamStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates one stream.
    pub fn add(&mut self, s: &Stream) {
        self.count += 1;
        self.insts += u64::from(s.len);
        self.max_len = self.max_len.max(s.len);
        let bucket = match s.len {
            0..=8 => 0,
            9..=16 => 1,
            17..=24 => 2,
            25..=32 => 3,
            _ => 4,
        };
        self.hist[bucket] += 1;
        *self.unique.entry_or_insert((s.start, s.len), 0) += 1;
    }

    /// Mean stream length in instructions (the paper's Table 1 "size").
    pub fn mean_len(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.insts as f64 / self.count as f64
        }
    }

    /// Number of distinct `(start, len)` stream identities — the working set
    /// a next-stream predictor must hold.
    pub fn unique_streams(&self) -> usize {
        self.unique.len()
    }

    /// Fraction of dynamic instructions covered by the `n` hottest streams —
    /// the locality a small predictor exploits.
    pub fn coverage_of_top(&self, n: usize) -> f64 {
        if self.insts == 0 {
            return 0.0;
        }
        let mut v: Vec<(u64, u32)> =
            self.unique.iter().map(|(&(_, len), &cnt)| (cnt, len)).collect();
        v.sort_by(|a, b| (b.0 * u64::from(b.1)).cmp(&(a.0 * u64::from(a.1))));
        let covered: u64 = v.iter().take(n).map(|&(cnt, len)| cnt * u64::from(len)).sum();
        covered as f64 / self.insts as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::DynControl;
    use sfetch_isa::{InstClass, StaticInst};

    fn alu(pc: u64) -> DynInst {
        DynInst {
            seq: 0,
            pc: Addr::new(pc),
            inst: StaticInst::simple(InstClass::IntAlu),
            mem_addr: None,
            control: None,
        }
    }

    fn branch(pc: u64, taken: bool, target: u64) -> DynInst {
        DynInst {
            seq: 0,
            pc: Addr::new(pc),
            inst: StaticInst::branch(BranchKind::Cond),
            mem_addr: None,
            control: Some(DynControl {
                kind: BranchKind::Cond,
                taken,
                target: Addr::new(target),
                next_pc: Addr::new(if taken { target } else { pc + 4 }),
                is_fixup: false,
            }),
        }
    }

    #[test]
    fn taken_branch_closes_stream() {
        let mut ex = StreamExtractor::new();
        assert_eq!(ex.push(&alu(0x100)), None);
        assert_eq!(ex.push(&alu(0x104)), None);
        let s = ex.push(&branch(0x108, true, 0x200)).expect("stream closed");
        assert_eq!(s.start, Addr::new(0x100));
        assert_eq!(s.len, 3);
        assert_eq!(s.term, Some(BranchKind::Cond));
        assert_eq!(s.next, Addr::new(0x200));
    }

    #[test]
    fn not_taken_branches_are_embedded() {
        let mut ex = StreamExtractor::new();
        ex.push(&alu(0x100));
        assert_eq!(ex.push(&branch(0x104, false, 0x300)), None, "embedded");
        ex.push(&alu(0x108));
        let s = ex.push(&branch(0x10c, true, 0x200)).expect("closed");
        assert_eq!(s.len, 4, "embedded branch counts toward stream length");
    }

    #[test]
    fn cap_splits_long_sequential_runs() {
        let mut ex = StreamExtractor::new();
        let mut emitted = Vec::new();
        for i in 0..(MAX_STREAM_LEN as u64 + 10) {
            if let Some(s) = ex.push(&alu(0x1000 + i * 4)) {
                emitted.push(s);
            }
        }
        assert_eq!(emitted.len(), 1);
        assert_eq!(emitted[0].len, MAX_STREAM_LEN);
        assert_eq!(emitted[0].term, None);
        assert_eq!(emitted[0].next, Addr::new(0x1000 + u64::from(MAX_STREAM_LEN) * 4));
        assert_eq!(ex.in_flight_len(), 10);
    }

    #[test]
    fn restart_begins_partial_stream() {
        let mut ex = StreamExtractor::new();
        ex.push(&alu(0x100));
        ex.restart_at(Addr::new(0x500));
        let s = ex.push(&branch(0x500, true, 0x600)).expect("closed");
        assert_eq!(s.start, Addr::new(0x500), "partial stream starts at recovery point");
        assert_eq!(s.len, 1);
    }

    #[test]
    fn stats_aggregate() {
        let mut st = StreamStats::new();
        st.add(&Stream { start: Addr::new(0x100), len: 4, term: Some(BranchKind::Cond), next: Addr::new(0x200) });
        st.add(&Stream { start: Addr::new(0x100), len: 4, term: Some(BranchKind::Cond), next: Addr::new(0x200) });
        st.add(&Stream { start: Addr::new(0x300), len: 20, term: Some(BranchKind::Jump), next: Addr::new(0x400) });
        assert_eq!(st.count, 3);
        assert_eq!(st.insts, 28);
        assert!((st.mean_len() - 28.0 / 3.0).abs() < 1e-9);
        assert_eq!(st.max_len, 20);
        assert_eq!(st.unique_streams(), 2);
        assert_eq!(st.hist[0], 2);
        assert_eq!(st.hist[2], 1);
        // top-1 = the 20-inst stream: 20/28 coverage.
        assert!((st.coverage_of_top(1) - 20.0 / 28.0).abs() < 1e-9);
        assert!((st.coverage_of_top(10) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_zero() {
        let st = StreamStats::new();
        assert_eq!(st.mean_len(), 0.0);
        assert_eq!(st.coverage_of_top(5), 0.0);
    }
}
