//! Trace-level workload characterization.
//!
//! These are the dynamic statistics the paper's analysis leans on: the
//! fraction of not-taken conditional instances (≈80% with optimized
//! layouts), mean basic-block and stream sizes (Table 1), and the density of
//! each control-transfer kind.

use sfetch_isa::BranchKind;

use crate::record::DynInst;
use crate::stream::{StreamExtractor, StreamStats};

/// Aggregate statistics of a committed-path trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceStats {
    /// Instructions observed.
    pub insts: u64,
    /// All control-transfer instructions (including fix-up jumps).
    pub control: u64,
    /// Taken control transfers.
    pub taken: u64,
    /// Conditional branch instances.
    pub cond: u64,
    /// Taken conditional instances.
    pub cond_taken: u64,
    /// Call instances (direct + indirect).
    pub calls: u64,
    /// Return instances.
    pub returns: u64,
    /// Indirect jump instances.
    pub indirect_jumps: u64,
    /// Layout fix-up jump instances (cost of a bad layout).
    pub fixup_jumps: u64,
    /// Memory operations.
    pub mem_ops: u64,
    /// Stream statistics.
    pub streams: StreamStats,
    extractor: StreamExtractor,
}

impl TraceStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Collects statistics over the first `n` instructions of `trace`.
    pub fn collect<I: Iterator<Item = DynInst>>(trace: I, n: u64) -> Self {
        let mut s = Self::new();
        for d in trace.take(n as usize) {
            s.push(&d);
        }
        s
    }

    /// Accumulates one committed instruction.
    pub fn push(&mut self, d: &DynInst) {
        self.insts += 1;
        if d.mem_addr.is_some() {
            self.mem_ops += 1;
        }
        if let Some(c) = d.control {
            self.control += 1;
            self.taken += u64::from(c.taken);
            if c.is_fixup {
                self.fixup_jumps += 1;
            }
            match c.kind {
                BranchKind::Cond => {
                    self.cond += 1;
                    self.cond_taken += u64::from(c.taken);
                }
                BranchKind::Call | BranchKind::IndirectCall => self.calls += 1,
                BranchKind::Return => self.returns += 1,
                BranchKind::IndirectJump => self.indirect_jumps += 1,
                BranchKind::Jump => {}
            }
        }
        if let Some(stream) = self.extractor.push(d) {
            self.streams.add(&stream);
        }
    }

    /// Fraction of conditional instances that were **not** taken — the
    /// quantity layout optimization drives towards ~0.8 (§3.2).
    pub fn cond_not_taken_ratio(&self) -> f64 {
        if self.cond == 0 {
            0.0
        } else {
            1.0 - self.cond_taken as f64 / self.cond as f64
        }
    }

    /// Mean dynamic basic-block size: instructions per control transfer
    /// (Table 1's "basic block ≈ 5–6 instructions").
    pub fn mean_block_len(&self) -> f64 {
        if self.control == 0 {
            0.0
        } else {
            self.insts as f64 / self.control as f64
        }
    }

    /// Mean sequential run length: instructions per *taken* transfer — the
    /// paper's stream size.
    pub fn mean_run_len(&self) -> f64 {
        if self.taken == 0 {
            0.0
        } else {
            self.insts as f64 / self.taken as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfetch_cfg::gen::{GenParams, ProgramGenerator};
    use sfetch_cfg::{layout, CodeImage, EdgeProfile};

    use crate::exec::Executor;

    #[test]
    fn stats_count_consistently() {
        let cfg = ProgramGenerator::new(GenParams::small(), 2).generate();
        let lay = layout::natural(&cfg);
        let img = CodeImage::build(&cfg, &lay);
        let st = TraceStats::collect(Executor::new(&cfg, &img, 3), 50_000);
        assert_eq!(st.insts, 50_000);
        assert!(st.control > 0);
        assert!(st.taken <= st.control);
        assert!(st.cond_taken <= st.cond);
        assert!(st.cond <= st.control);
        assert!(st.mean_block_len() >= 1.0);
        assert!(st.mean_run_len() >= st.mean_block_len(), "runs span >= one block");
    }

    #[test]
    fn optimized_layout_grows_streams() {
        // Table 1 phenomenon: streams lengthen under layout optimization.
        let cfg = ProgramGenerator::new(GenParams::default_int(), 10).generate();
        let img_b = CodeImage::build(&cfg, &layout::natural(&cfg));
        let base = TraceStats::collect(Executor::new(&cfg, &img_b, 3), 200_000);
        let prof = EdgeProfile::from_expected(&cfg);
        let img_o = CodeImage::build(&cfg, &layout::pettis_hansen(&cfg, &prof));
        let opt = TraceStats::collect(Executor::new(&cfg, &img_o, 3), 200_000);
        assert!(
            opt.streams.mean_len() > base.streams.mean_len(),
            "optimized {} <= base {}",
            opt.streams.mean_len(),
            base.streams.mean_len()
        );
        assert!(opt.cond_not_taken_ratio() > base.cond_not_taken_ratio());
    }

    #[test]
    fn fixups_are_counted() {
        let cfg = ProgramGenerator::new(GenParams::small(), 2).generate();
        let lay = layout::random(&cfg, 1); // pessimal layout => many fixups
        let img = CodeImage::build(&cfg, &lay);
        let st = TraceStats::collect(Executor::new(&cfg, &img, 3), 20_000);
        assert!(st.fixup_jumps > 0, "random layout must execute fixup jumps");
    }
}
