//! Training-run profiling (the paper's `pixie` + train-input step).

use sfetch_cfg::{BlockId, Cfg, CodeImage, EdgeProfile};
use sfetch_isa::BranchKind;

use crate::exec::Executor;
use crate::record::DynControl;

/// Executes `n_insts` instructions of the program under `image` with the
/// given *training* seed and returns the edge profile that drives
/// profile-guided layout.
///
/// The returned profile counts block executions, intra-procedural edge
/// traversals and dynamic call edges. Following the paper's methodology the
/// training seed should differ from the measurement seed (train vs ref
/// inputs).
pub fn profile_cfg(cfg: &Cfg, image: &CodeImage, seed: u64, n_insts: u64) -> EdgeProfile {
    let mut profile = EdgeProfile::new();
    let mut prev: Option<(BlockId, Option<DynControl>)> = None;
    for d in Executor::new(cfg, image, seed).take(n_insts as usize) {
        let owner = image.owner_at(d.pc).expect("committed path stays inside the image");
        match prev {
            Some((powner, pctrl)) if powner != owner => {
                match pctrl {
                    Some(c)
                        if matches!(c.kind, BranchKind::Call | BranchKind::IndirectCall)
                            && !c.is_fixup =>
                    {
                        profile
                            .count_call(cfg.block(powner).func(), cfg.block(owner).func());
                    }
                    // Returns are not CFG edges; the call edge plus the
                    // call-site adjacency already capture the locality.
                    Some(c) if c.kind == BranchKind::Return => {}
                    _ => profile.count_edge(powner, owner),
                }
                profile.count_block(owner);
            }
            None => profile.count_block(owner),
            _ => {}
        }
        prev = Some((owner, d.control));
    }
    profile
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfetch_cfg::builder::CfgBuilder;
    use sfetch_cfg::{layout, CondBehavior};

    #[test]
    fn measured_profile_matches_behaviour() {
        // cond p_taken = 0.9 towards `hot`.
        let mut bld = CfgBuilder::new();
        let f = bld.add_func("main");
        let a = bld.add_block(f, 2);
        let cold = bld.add_block(f, 2);
        let hot = bld.add_block(f, 2);
        let back = bld.add_block(f, 1);
        bld.set_cond(a, hot, cold, CondBehavior::Bernoulli { p_taken: 0.9 });
        bld.set_fallthrough(cold, back);
        bld.set_fallthrough(hot, back);
        bld.set_jump(back, a);
        let cfg = bld.finish().expect("valid");
        let img = sfetch_cfg::CodeImage::build(&cfg, &layout::natural(&cfg));
        let p = profile_cfg(&cfg, &img, 7, 50_000);
        let hot_w = p.edge_count(a, hot) as f64;
        let cold_w = p.edge_count(a, cold) as f64;
        let ratio = hot_w / (hot_w + cold_w);
        assert!((ratio - 0.9).abs() < 0.03, "measured taken ratio {ratio} should be ~0.9");
        assert!(p.block_count(a) > 1000);
    }

    #[test]
    fn call_edges_recorded() {
        let mut bld = CfgBuilder::new();
        let main = bld.add_func("main");
        let leaf = bld.add_func("leaf");
        let c = bld.add_block(main, 1);
        let r = bld.add_block(main, 1);
        let l0 = bld.add_block(leaf, 2);
        bld.set_call(c, leaf, r);
        bld.set_jump(r, c);
        bld.set_return(l0);
        let cfg = bld.finish().expect("valid");
        let img = sfetch_cfg::CodeImage::build(&cfg, &layout::natural(&cfg));
        let p = profile_cfg(&cfg, &img, 1, 10_000);
        assert!(p.call_count(main, leaf) > 100);
        // The return transition must NOT be recorded as a CFG edge.
        assert_eq!(p.edge_count(l0, r), 0);
    }

    #[test]
    fn profiles_differ_by_seed_but_agree_in_shape() {
        use sfetch_cfg::gen::{GenParams, ProgramGenerator};
        let cfg = ProgramGenerator::new(GenParams::small(), 4).generate();
        let img = sfetch_cfg::CodeImage::build(&cfg, &layout::natural(&cfg));
        let p1 = profile_cfg(&cfg, &img, 100, 50_000);
        let p2 = profile_cfg(&cfg, &img, 200, 50_000);
        // Hot blocks under one seed are hot under the other.
        let mut hot1: Vec<_> = cfg.blocks().iter().map(|b| (p1.block_count(b.id()), b.id())).collect();
        hot1.sort_by_key(|&(w, _)| std::cmp::Reverse(w));
        let top = &hot1[..hot1.len().min(5)];
        for &(w, b) in top {
            if w > 0 {
                assert!(p2.block_count(b) > 0, "hot block {b} cold under other seed");
            }
        }
    }
}
