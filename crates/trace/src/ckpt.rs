//! Architectural checkpoints: serializable executor state.
//!
//! A checkpoint captures *everything* the [`crate::Executor`] needs to
//! continue its trace bit-identically — RNG state, program counter,
//! per-branch pattern/loop/indirect cursors, the call stack and per-slot
//! execution counts (which drive load/store address generation). It
//! deliberately contains **no** timing state: caches and predictors are
//! re-warmed per sample window, which is what makes sample windows
//! independent of each other and lets a long sampled run be split across
//! shard processes whose merged result equals the single-process run
//! exactly.
//!
//! The wire format ([`ArchCheckpoint::to_bytes`]) is a flat little-endian
//! u64 stream with a magic/version header — hand-rolled because the build
//! environment has no serde. Sizes are dominated by `exec_count` (one u64
//! per image instruction slot), so a checkpoint of a 256K-instruction
//! image is ≈2MB; shard runners write one per shard, not one per window.

use sfetch_isa::Addr;

/// Magic + version tag of the checkpoint wire format.
const MAGIC: u64 = 0x5346_4348_4b50_5431; // "SFCHKPT1"

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a 64-bit hasher — the digest primitive behind
/// checkpoint integrity checks and workload fingerprints. Hand-rolled
/// (like the checkpoint wire format itself) because the build
/// environment has no hashing crates; FNV is deterministic across
/// platforms and processes, which `std`'s `DefaultHasher` explicitly
/// does not guarantee.
#[derive(Debug, Clone, Copy)]
pub struct Digest(u64);

impl Digest {
    /// Starts a fresh digest.
    pub fn new() -> Self {
        Digest(FNV_OFFSET)
    }

    /// Folds raw bytes into the digest.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds one little-endian word into the digest.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// The digest value accumulated so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Digest {
    fn default() -> Self {
        Self::new()
    }
}

/// FNV-1a 64-bit digest of a byte buffer in one call.
pub fn digest_bytes(bytes: &[u8]) -> u64 {
    let mut d = Digest::new();
    d.write_bytes(bytes);
    d.finish()
}

/// Complete architectural state of an [`crate::Executor`].
///
/// `cond_loop_remaining` encodes `Option<u32>` with `u32::MAX` as the
/// "not inside a loop execution" sentinel (trip counts are clamped far
/// below it by the generator).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchCheckpoint {
    /// Internal xoshiro256++ state of the behaviour-model RNG.
    pub rng: [u64; 4],
    /// Program counter of the next instruction to commit.
    pub pc: Addr,
    /// Instructions committed so far.
    pub seq: u64,
    /// Recent conditional outcomes (bit 0 = most recent instance).
    pub hist: u16,
    /// Valid bits in `hist`.
    pub hist_len: u32,
    /// Per-block next index into `CondCtl::Pattern` sequences.
    pub cond_pattern_idx: Vec<u32>,
    /// Per-block remaining latch evaluations (`u32::MAX` = none).
    pub cond_loop_remaining: Vec<u32>,
    /// Per-block next index into indirect target cycles.
    pub indirect_idx: Vec<u32>,
    /// Return-address stack.
    pub call_stack: Vec<Addr>,
    /// Per-slot execution counts (drive memory address generation).
    pub exec_count: Vec<u64>,
}

impl ArchCheckpoint {
    /// Digest of the checkpoint's serialized form.
    ///
    /// Every piece of per-window warm state (cache contents, predictor
    /// tables) is re-derived deterministically from the architectural
    /// state this checkpoint captures, so this digest *pins* the warm
    /// state a window simulation will build from it — it is the
    /// warm-state digest the `sfetch-sample` checkpoint store records
    /// and verifies on load.
    pub fn digest(&self) -> u64 {
        digest_bytes(&self.to_bytes())
    }

    /// Serializes the checkpoint to a flat byte buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let n_blocks = self.cond_pattern_idx.len();
        // One u64 word per field: header (12 words), three per-block u32
        // cursors (stored widened), the call stack, and exec_count.
        let mut out = Vec::with_capacity(
            8 * (12 + 3 * n_blocks + self.call_stack.len() + self.exec_count.len()),
        );
        let mut put = |v: u64| out.extend_from_slice(&v.to_le_bytes());
        put(MAGIC);
        for s in self.rng {
            put(s);
        }
        put(self.pc.get());
        put(self.seq);
        put(u64::from(self.hist) | (u64::from(self.hist_len) << 32));
        put(n_blocks as u64);
        put(self.call_stack.len() as u64);
        put(self.exec_count.len() as u64);
        for &v in &self.cond_pattern_idx {
            put(u64::from(v));
        }
        for &v in &self.cond_loop_remaining {
            put(u64::from(v));
        }
        for &v in &self.indirect_idx {
            put(u64::from(v));
        }
        for &a in &self.call_stack {
            put(a.get());
        }
        for &c in &self.exec_count {
            put(c);
        }
        out
    }

    /// Deserializes a checkpoint produced by [`ArchCheckpoint::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem found (bad
    /// magic, truncated buffer, trailing bytes).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        if !bytes.len().is_multiple_of(8) {
            return Err(format!("checkpoint length {} is not word-aligned", bytes.len()));
        }
        let words: Vec<u64> = bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8")))
            .collect();
        let mut it = words.iter().copied();
        let mut next = |what: &str| it.next().ok_or_else(|| format!("truncated at {what}"));
        if next("magic")? != MAGIC {
            return Err("bad checkpoint magic (wrong file or version?)".into());
        }
        let rng = [next("rng0")?, next("rng1")?, next("rng2")?, next("rng3")?];
        let pc = Addr::new(next("pc")?);
        let seq = next("seq")?;
        let packed = next("hist")?;
        let hist = (packed & 0xffff) as u16;
        let hist_len = (packed >> 32) as u32;
        let n_blocks = next("n_blocks")? as usize;
        let n_stack = next("n_stack")? as usize;
        let n_slots = next("n_slots")? as usize;
        let mut take_u32s = |n: usize, what: &str| -> Result<Vec<u32>, String> {
            (0..n).map(|_| next(what).map(|v| v as u32)).collect()
        };
        let cond_pattern_idx = take_u32s(n_blocks, "pattern_idx")?;
        let cond_loop_remaining = take_u32s(n_blocks, "loop_remaining")?;
        let indirect_idx = take_u32s(n_blocks, "indirect_idx")?;
        let call_stack: Vec<Addr> =
            (0..n_stack).map(|_| next("call_stack").map(Addr::new)).collect::<Result<_, _>>()?;
        let exec_count: Vec<u64> =
            (0..n_slots).map(|_| next("exec_count")).collect::<Result<_, _>>()?;
        if it.next().is_some() {
            return Err("trailing bytes after checkpoint".into());
        }
        Ok(ArchCheckpoint {
            rng,
            pc,
            seq,
            hist,
            hist_len,
            cond_pattern_idx,
            cond_loop_remaining,
            indirect_idx,
            call_stack,
            exec_count,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Executor;
    use sfetch_cfg::gen::{GenParams, ProgramGenerator};
    use sfetch_cfg::{layout, CodeImage};

    fn image() -> CodeImage {
        let cfg = ProgramGenerator::new(GenParams::small(), 12).generate();
        let lay = layout::natural(&cfg);
        CodeImage::build(&cfg, &lay)
    }

    #[test]
    fn resume_is_bit_identical_to_straight_through() {
        let img = image();
        let mut straight = Executor::from_image(&img, 9);
        let head: Vec<_> = (&mut straight).take(20_000).collect();
        let cp = straight.checkpoint();
        assert_eq!(cp.seq, 20_000);
        assert_eq!(cp.pc, head.last().expect("nonempty").next_pc());
        let tail_a: Vec<_> = (&mut straight).take(20_000).collect();
        let tail_b: Vec<_> = Executor::from_checkpoint(&img, &cp).take(20_000).collect();
        assert_eq!(tail_a, tail_b, "resumed trace must match straight-through");
    }

    #[test]
    fn bytes_roundtrip() {
        let img = image();
        let mut ex = Executor::from_image(&img, 3);
        ex.nth(12_345);
        let cp = ex.checkpoint();
        let bytes = cp.to_bytes();
        let back = ArchCheckpoint::from_bytes(&bytes).expect("roundtrip");
        assert_eq!(cp, back);
        // And the deserialized checkpoint still resumes identically.
        let a: Vec<_> = Executor::from_checkpoint(&img, &cp).take(5000).collect();
        let b: Vec<_> = Executor::from_checkpoint(&img, &back).take(5000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(ArchCheckpoint::from_bytes(&[1, 2, 3]).is_err(), "unaligned");
        assert!(ArchCheckpoint::from_bytes(&[0u8; 16]).is_err(), "bad magic");
        let img = image();
        let cp = Executor::from_image(&img, 3).checkpoint();
        let mut bytes = cp.to_bytes();
        bytes.truncate(bytes.len() - 8);
        assert!(ArchCheckpoint::from_bytes(&bytes).is_err(), "truncated");
        let mut long = cp.to_bytes();
        long.extend_from_slice(&[0u8; 8]);
        assert!(ArchCheckpoint::from_bytes(&long).is_err(), "trailing");
    }

    #[test]
    #[should_panic(expected = "not captured on this image")]
    fn restore_on_wrong_image_panics() {
        let img = image();
        let cp = Executor::from_image(&img, 3).checkpoint();
        let other_cfg = ProgramGenerator::new(GenParams::small(), 99).generate();
        let other = CodeImage::build(&other_cfg, &layout::natural(&other_cfg));
        let _ = Executor::from_checkpoint(&other, &cp);
    }
}
