//! Dynamic instruction records — the unit of the committed-path trace.

use sfetch_isa::{Addr, BranchKind, StaticInst};

/// Resolved outcome of one dynamic control-transfer instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynControl {
    /// Kind of the control transfer.
    pub kind: BranchKind,
    /// Whether the transfer was (physically) taken.
    pub taken: bool,
    /// Target address; meaningful when `taken` (for conditionals that fall
    /// through it still holds the static branch target).
    pub target: Addr,
    /// Address of the next committed instruction (`target` if taken,
    /// fall-through otherwise).
    pub next_pc: Addr,
    /// Whether the instruction is a layout-inserted fix-up jump.
    pub is_fixup: bool,
}

/// One committed dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynInst {
    /// Position in the dynamic instruction stream (0-based).
    pub seq: u64,
    /// Instruction address.
    pub pc: Addr,
    /// The static instruction at that address.
    pub inst: StaticInst,
    /// Effective address, for loads/stores.
    pub mem_addr: Option<Addr>,
    /// Control outcome, for branches.
    pub control: Option<DynControl>,
}

impl DynInst {
    /// Address of the instruction that architecturally follows this one.
    #[inline]
    pub fn next_pc(&self) -> Addr {
        match self.control {
            Some(c) => c.next_pc,
            None => self.pc.next_inst(),
        }
    }

    /// Whether this instruction is a taken control transfer.
    #[inline]
    pub fn is_taken_branch(&self) -> bool {
        self.control.is_some_and(|c| c.taken)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfetch_isa::InstClass;

    #[test]
    fn next_pc_follows_control() {
        let plain = DynInst {
            seq: 0,
            pc: Addr::new(0x100),
            inst: StaticInst::simple(InstClass::IntAlu),
            mem_addr: None,
            control: None,
        };
        assert_eq!(plain.next_pc(), Addr::new(0x104));
        assert!(!plain.is_taken_branch());

        let br = DynInst {
            seq: 1,
            pc: Addr::new(0x104),
            inst: StaticInst::branch(BranchKind::Cond),
            mem_addr: None,
            control: Some(DynControl {
                kind: BranchKind::Cond,
                taken: true,
                target: Addr::new(0x200),
                next_pc: Addr::new(0x200),
                is_fixup: false,
            }),
        };
        assert_eq!(br.next_pc(), Addr::new(0x200));
        assert!(br.is_taken_branch());
    }
}
