//! The architectural executor: deterministic committed-path generation.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use sfetch_cfg::{Cfg, CodeImage, CondCtl, ControlTable, IndirectCtl, TripCount};
use sfetch_isa::Addr;

use crate::record::{DynControl, DynInst};

/// Maximum conditional-outcome history retained for
/// [`sfetch_cfg::CondBehavior::Correlated`] evaluation.
const HIST_LEN: u32 = 16;

/// Per-branch evaluation state.
#[derive(Debug, Clone, Default)]
struct CondState {
    /// Next index into a [`CondCtl::Pattern`].
    pattern_idx: u32,
    /// Remaining latch evaluations of the current loop execution.
    loop_remaining: Option<u32>,
}

/// Architectural executor over a laid-out program.
///
/// `Executor` walks the [`CodeImage`] instruction by instruction, evaluating
/// the CFG's behaviour models at control transfers, maintaining the call
/// stack, and generating load/store addresses from each instruction's
/// [`sfetch_isa::MemPattern`]. It is an **infinite**, deterministic iterator:
/// the same `(image, seed)` pair always produces the same trace, and `main`
/// is generated with an effectively unbounded outer loop.
///
/// The executor is the simulator's *oracle*: fetch engines speculate against
/// the image, and the processor compares their predictions with the
/// executor's outcomes.
///
/// The per-instruction path is allocation-free: control transfers resolve
/// through the image's interned [`ControlTable`] (built once per image)
/// instead of re-matching CFG terminators and cloning their payloads, and
/// the correlated-branch history lives in a bitmask.
///
/// The executor's whole dynamic state is *architectural* — program
/// counter, RNG, per-branch pattern/loop/indirect cursors, call stack and
/// per-slot execution counts — so it can be captured into an
/// [`crate::ArchCheckpoint`] ([`Executor::checkpoint`]) and resumed
/// bit-identically ([`Executor::from_checkpoint`]), which is what lets
/// sampled simulation split one long run into independent shards.
#[derive(Debug, Clone)]
pub struct Executor<'a> {
    image: &'a CodeImage,
    ctl: &'a ControlTable,
    /// Cached `image.base()` / `image.len_insts()` for the slot fast path.
    base: Addr,
    n_slots: usize,
    rng: SmallRng,
    pc: Addr,
    seq: u64,
    cond_state: Vec<CondState>,
    indirect_idx: Vec<u32>,
    call_stack: Vec<Addr>,
    /// Recent conditional outcomes, bit 0 = most recent instance.
    hist: u16,
    /// How many history bits are valid (saturates at [`HIST_LEN`]).
    hist_len: u32,
    exec_count: Vec<u64>,
}

impl<'a> Executor<'a> {
    /// Creates an executor starting at the image entry point.
    ///
    /// # Panics
    ///
    /// Panics if `image` was not built from `cfg` (block-count mismatch is
    /// detected eagerly; finer inconsistencies when an instruction's owner
    /// block resolves to the wrong control class).
    pub fn new(cfg: &'a Cfg, image: &'a CodeImage, seed: u64) -> Self {
        assert_eq!(
            cfg.num_blocks(),
            image.control().num_blocks(),
            "image was not built from this cfg"
        );
        Self::from_image(image, seed)
    }

    /// Creates an executor from the image alone: the interned control table
    /// carries everything the oracle needs, so no CFG borrow is required.
    pub fn from_image(image: &'a CodeImage, seed: u64) -> Self {
        let ctl = image.control();
        Executor {
            image,
            ctl,
            base: image.base(),
            n_slots: image.len_insts(),
            rng: SmallRng::seed_from_u64(seed),
            pc: image.entry(),
            seq: 0,
            cond_state: vec![CondState::default(); ctl.num_blocks()],
            indirect_idx: vec![0; ctl.num_blocks()],
            call_stack: Vec::with_capacity(64),
            hist: 0,
            hist_len: 0,
            exec_count: vec![0; image.len_insts()],
        }
    }

    /// Current program counter (address of the next instruction to commit).
    #[inline]
    pub fn pc(&self) -> Addr {
        self.pc
    }

    /// Number of instructions committed so far.
    #[inline]
    pub fn committed(&self) -> u64 {
        self.seq
    }

    /// Current call-stack depth.
    #[inline]
    pub fn call_depth(&self) -> usize {
        self.call_stack.len()
    }

    /// Captures the executor's complete architectural state. Resuming from
    /// the checkpoint ([`Executor::from_checkpoint`]) continues the trace
    /// bit-identically — same instructions, same branch outcomes, same
    /// memory addresses.
    pub fn checkpoint(&self) -> crate::ArchCheckpoint {
        crate::ArchCheckpoint {
            rng: self.rng.state(),
            pc: self.pc,
            seq: self.seq,
            hist: self.hist,
            hist_len: self.hist_len,
            cond_pattern_idx: self.cond_state.iter().map(|s| s.pattern_idx).collect(),
            cond_loop_remaining: self
                .cond_state
                .iter()
                .map(|s| s.loop_remaining.unwrap_or(u32::MAX))
                .collect(),
            indirect_idx: self.indirect_idx.clone(),
            call_stack: self.call_stack.clone(),
            exec_count: self.exec_count.clone(),
        }
    }

    /// Resumes an executor from a checkpoint over the *same* image the
    /// checkpoint was captured on.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint's table sizes do not match `image` (the
    /// checkpoint was taken on a different program or layout).
    pub fn from_checkpoint(image: &'a CodeImage, cp: &crate::ArchCheckpoint) -> Self {
        let ctl = image.control();
        assert_eq!(
            cp.cond_pattern_idx.len(),
            ctl.num_blocks(),
            "checkpoint was not captured on this image (block count mismatch)"
        );
        assert_eq!(
            cp.exec_count.len(),
            image.len_insts(),
            "checkpoint was not captured on this image (slot count mismatch)"
        );
        Executor {
            image,
            ctl,
            base: image.base(),
            n_slots: image.len_insts(),
            rng: SmallRng::from_state(cp.rng),
            pc: cp.pc,
            seq: cp.seq,
            cond_state: cp
                .cond_pattern_idx
                .iter()
                .zip(&cp.cond_loop_remaining)
                .map(|(&pattern_idx, &lr)| CondState {
                    pattern_idx,
                    loop_remaining: (lr != u32::MAX).then_some(lr),
                })
                .collect(),
            indirect_idx: cp.indirect_idx.clone(),
            call_stack: cp.call_stack.clone(),
            hist: cp.hist,
            hist_len: cp.hist_len,
            exec_count: cp.exec_count.clone(),
        }
    }

    fn eval_cond(&mut self, owner: sfetch_cfg::BlockId, ctl: CondCtl) -> bool {
        let st = &mut self.cond_state[owner.index()];
        let logical = match ctl {
            // Probabilities are pre-clamped by the control table.
            CondCtl::Bernoulli { p_taken } => self.rng.random::<f64>() < p_taken,
            CondCtl::Pattern { off, len } => {
                if len == 0 {
                    false
                } else {
                    // Invariant: pattern_idx < len, so no per-instance modulo.
                    let v = self.ctl.pattern_bits(off, len)[st.pattern_idx as usize];
                    st.pattern_idx = if st.pattern_idx + 1 == len { 0 } else { st.pattern_idx + 1 };
                    v
                }
            }
            CondCtl::Loop { trip } => {
                let remaining = match st.loop_remaining {
                    Some(r) => r,
                    None => sample_trip(&mut self.rng, trip),
                };
                if remaining > 1 {
                    st.loop_remaining = Some(remaining - 1);
                    true // stay in the loop: logical taken edge is the back-edge
                } else {
                    st.loop_remaining = None;
                    false
                }
            }
            CondCtl::Correlated { dist, invert, noise } => {
                let noisy = self.rng.random::<f64>() < noise;
                let base = if noisy || u32::from(dist) > self.hist_len {
                    self.rng.random_bool(0.5)
                } else {
                    self.hist >> (dist - 1) & 1 == 1
                };
                base ^ invert
            }
        };
        self.hist = self.hist << 1 | u16::from(logical);
        self.hist_len = (self.hist_len + 1).min(HIST_LEN);
        logical
    }

    fn pick_weighted(&mut self, items: &[(Addr, u64)], total: u64) -> Addr {
        let mut r = self.rng.random_range(0..total.max(1));
        for &(item, w) in items {
            if r < w {
                return item;
            }
            r -= w;
        }
        items.last().expect("non-empty weighted list").0
    }

    fn pick_indirect(&mut self, owner: sfetch_cfg::BlockId, ic: IndirectCtl) -> Addr {
        let cycle = self.ctl.cycle_of(ic);
        let targets = self.ctl.targets_of(ic);
        if cycle.is_empty() {
            self.pick_weighted(targets, ic.total_weight)
        } else {
            // Invariant: indirect_idx < cycle.len(); cycle entries are
            // pre-reduced to valid target slots by the control table.
            let idx = &mut self.indirect_idx[owner.index()];
            let slot = cycle[*idx as usize] as usize;
            *idx = if *idx as usize + 1 == cycle.len() { 0 } else { *idx + 1 };
            targets[slot].0
        }
    }

    /// Executes one instruction and advances the architectural state.
    fn step(&mut self) -> DynInst {
        // Fast slot resolution: the committed path only ever produces
        // in-image, instruction-aligned pcs, so the alignment check of the
        // general `slot_of` lookup is unnecessary here.
        let slot = self.pc.insts_since(self.base) as usize;
        assert!(slot < self.n_slots, "executor left the image at {}", self.pc);
        let ii = self.image.inst(slot);
        let pc = self.pc;

        let mem_addr = ii.inst.mem_pattern().map(|p| {
            let k = self.exec_count[slot];
            self.exec_count[slot] += 1;
            p.address(k)
        });

        let control = ii.control.map(|attr| {
            use sfetch_isa::BranchKind as BK;
            let owner = attr.owner;
            let (taken, target) = if attr.is_fixup {
                (true, attr.target.expect("fixup jumps are direct"))
            } else {
                match attr.kind {
                    BK::Jump => (true, attr.target.expect("jumps are direct")),
                    BK::Cond => {
                        let ctl = self.ctl.cond_of(owner);
                        let logical = self.eval_cond(owner, ctl);
                        let physical = logical ^ attr.flipped;
                        (physical, attr.target.expect("cond branches are direct"))
                    }
                    BK::Call => {
                        self.call_stack.push(attr.fallthrough);
                        (true, attr.target.expect("calls are direct"))
                    }
                    BK::IndirectCall => {
                        let ic = self.ctl.indirect_of(owner);
                        let entry = self.pick_indirect(owner, ic);
                        self.call_stack.push(attr.fallthrough);
                        (true, entry)
                    }
                    BK::Return => {
                        // An empty stack means `main` returned; restart the
                        // program (the generator's main never does, but
                        // hand-built programs may).
                        let t = self.call_stack.pop().unwrap_or_else(|| self.image.entry());
                        (true, t)
                    }
                    BK::IndirectJump => {
                        let ic = self.ctl.indirect_of(owner);
                        (true, self.pick_indirect(owner, ic))
                    }
                }
            };
            let next_pc = if taken { target } else { attr.fallthrough };
            DynControl { kind: attr.kind, taken, target, next_pc, is_fixup: attr.is_fixup }
        });

        self.pc = match control {
            Some(c) => c.next_pc,
            None => pc.next_inst(),
        };
        let rec = DynInst { seq: self.seq, pc, inst: ii.inst, mem_addr, control };
        self.seq += 1;
        rec
    }
}

impl Iterator for Executor<'_> {
    type Item = DynInst;

    fn next(&mut self) -> Option<DynInst> {
        Some(self.step())
    }
}

/// Where a detailed core's reference stream comes from: a live
/// [`Executor`] (the classic one-core-one-walk shape) or a replayed
/// slice of pre-recorded [`DynInst`]s.
///
/// The replay variant is what lets a *batched* sampler walk the
/// functional stream **once** and feed N in-flight windows: the shared
/// walk records its instructions into a buffer, and each window's core
/// consumes the buffer through `Replay` instead of advancing its own
/// executor. An `Executor` yields a pure function of its checkpoint
/// state, so replaying the recorded sequence is bit-identical to
/// re-walking it — the batched/serial differential tests pin this.
#[derive(Debug, Clone)]
pub enum OracleSource<'a> {
    /// A live functional walk owned by this core.
    Live(Executor<'a>),
    /// A cursor over a shared pre-recorded instruction buffer.
    Replay {
        /// The recorded committed-path instructions.
        buf: &'a [DynInst],
        /// Next index to yield.
        idx: usize,
    },
}

impl<'a> OracleSource<'a> {
    /// Yields the next committed-path instruction.
    ///
    /// `Live` is infinite; `Replay` panics past the end of its buffer —
    /// the recorder sizes buffers with head-room for the core's fetch
    /// lookahead, so exhaustion is a recording bug, not a data
    /// condition, and must fail loudly rather than desynchronize.
    /// (Named `next_inst`, not `next`: the source is not an iterator —
    /// `Live` never ends and `Replay` treats exhaustion as a panic.)
    #[inline]
    pub fn next_inst(&mut self) -> Option<DynInst> {
        match self {
            OracleSource::Live(exec) => exec.next(),
            OracleSource::Replay { buf, idx } => {
                let d = *buf
                    .get(*idx)
                    .expect("replay oracle exhausted: recorded window buffer too short");
                *idx += 1;
                Some(d)
            }
        }
    }

    /// Address of the next instruction the source will yield.
    pub fn pc(&self) -> Addr {
        match self {
            OracleSource::Live(exec) => exec.pc(),
            OracleSource::Replay { buf, idx } => {
                buf.get(*idx).expect("replay oracle exhausted: empty remainder").pc
            }
        }
    }
}

/// Deterministic fingerprint of the architectural trace `(image, seed)`
/// yields: the image's static shape folded with the first `prefix`
/// committed instructions of the walk.
///
/// Two workloads that differ in *any* input to trace generation —
/// program structure, branch-behaviour models, layout (addresses), or
/// input seed — diverge in the committed path and therefore in this
/// fingerprint, which is what lets the `sfetch-sample` checkpoint store
/// key cached state on it: a checkpoint is only ever replayed against
/// the exact trace that produced it. The prefix walk costs microseconds
/// (a few ns per instruction) against the minutes of simulation the
/// store amortizes.
pub fn trace_fingerprint(image: &CodeImage, seed: u64, prefix: u64) -> u64 {
    let mut d = crate::ckpt::Digest::new();
    d.write_u64(image.base().get());
    d.write_u64(image.entry().get());
    d.write_u64(image.len_insts() as u64);
    d.write_u64(seed);
    d.write_u64(prefix);
    for rec in Executor::from_image(image, seed).take(prefix as usize) {
        d.write_u64(rec.pc.get());
        match rec.control {
            Some(c) => {
                d.write_u64(1 | (u64::from(c.taken) << 1) | ((c.kind as u64) << 2));
                d.write_u64(c.next_pc.get());
            }
            None => d.write_u64(0),
        }
        if let Some(a) = rec.mem_addr {
            d.write_u64(a.get());
        }
    }
    d.finish()
}

fn sample_trip(rng: &mut SmallRng, trip: TripCount) -> u32 {
    match trip {
        TripCount::Fixed(n) => n.max(1),
        TripCount::Uniform { lo, hi } => {
            let lo = lo.max(1);
            let hi = hi.max(lo);
            rng.random_range(lo..=hi)
        }
        TripCount::Geometric { mean } => {
            let mean = f64::from(mean.max(1));
            let u: f64 = rng.random();
            let v = (1.0 - u).ln() / (1.0 - 1.0 / mean).ln();
            (v as u32).clamp(1, 1_000_000)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfetch_cfg::builder::CfgBuilder;
    use sfetch_cfg::gen::{GenParams, ProgramGenerator};
    use sfetch_cfg::{layout, CodeImage, CondBehavior};
    use sfetch_isa::BranchKind;

    fn loop_cfg(trip: u32) -> Cfg {
        let mut bld = CfgBuilder::new();
        let f = bld.add_func("main");
        let body = bld.add_block(f, 3);
        let exit = bld.add_block(f, 1);
        bld.set_cond(body, body, exit, CondBehavior::Loop { trip: TripCount::Fixed(trip) });
        bld.set_return(exit);
        bld.finish().expect("valid")
    }

    #[test]
    fn fixed_loop_runs_exact_trip_count() {
        let cfg = loop_cfg(5);
        let lay = layout::natural(&cfg);
        let img = CodeImage::build(&cfg, &lay);
        let mut exec = Executor::new(&cfg, &img, 0);
        // Count body executions before the first exit (branch not taken).
        let mut body_runs = 0;
        for d in &mut exec {
            if let Some(c) = d.control {
                if c.kind == BranchKind::Cond {
                    body_runs += 1;
                    if !c.taken {
                        break;
                    }
                }
            }
        }
        assert_eq!(body_runs, 5, "latch evaluated trip times, last one exits");
    }

    #[test]
    fn trace_is_deterministic() {
        let cfg = ProgramGenerator::new(GenParams::small(), 3).generate();
        let lay = layout::natural(&cfg);
        let img = CodeImage::build(&cfg, &lay);
        let a: Vec<_> = Executor::new(&cfg, &img, 11).take(5000).collect();
        let b: Vec<_> = Executor::new(&cfg, &img, 11).take(5000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn from_image_matches_new() {
        let cfg = ProgramGenerator::new(GenParams::small(), 3).generate();
        let lay = layout::natural(&cfg);
        let img = CodeImage::build(&cfg, &lay);
        let a: Vec<_> = Executor::new(&cfg, &img, 11).take(5000).collect();
        let b: Vec<_> = Executor::from_image(&img, 11).take(5000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_diverge() {
        let cfg = ProgramGenerator::new(GenParams::small(), 3).generate();
        let lay = layout::natural(&cfg);
        let img = CodeImage::build(&cfg, &lay);
        let a: Vec<_> = Executor::new(&cfg, &img, 1).take(5000).collect();
        let b: Vec<_> = Executor::new(&cfg, &img, 2).take(5000).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn control_flow_is_consistent() {
        // Every committed instruction's pc must equal the previous one's
        // next_pc.
        let cfg = ProgramGenerator::new(GenParams::small(), 8).generate();
        let lay = layout::natural(&cfg);
        let img = CodeImage::build(&cfg, &lay);
        let trace: Vec<_> = Executor::new(&cfg, &img, 9).take(20_000).collect();
        for w in trace.windows(2) {
            assert_eq!(w[1].pc, w[0].next_pc(), "discontinuity at seq {}", w[0].seq);
        }
    }

    #[test]
    fn returns_match_calls() {
        let cfg = ProgramGenerator::new(GenParams::small(), 4).generate();
        let lay = layout::natural(&cfg);
        let img = CodeImage::build(&cfg, &lay);
        let mut exec = Executor::new(&cfg, &img, 5);
        let mut stack: Vec<Addr> = Vec::new();
        for d in (&mut exec).take(50_000) {
            if let Some(c) = d.control {
                match c.kind {
                    BranchKind::Call | BranchKind::IndirectCall if !c.is_fixup => {
                        stack.push(d.pc.next_inst());
                    }
                    BranchKind::Return => {
                        if let Some(expect) = stack.pop() {
                            assert_eq!(c.target, expect, "return to wrong address");
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn executor_works_under_optimized_layout() {
        let cfg = ProgramGenerator::new(GenParams::small(), 6).generate();
        let prof = sfetch_cfg::EdgeProfile::from_expected(&cfg);
        let lay = layout::pettis_hansen(&cfg, &prof);
        let img = CodeImage::build(&cfg, &lay);
        let trace: Vec<_> = Executor::new(&cfg, &img, 9).take(20_000).collect();
        for w in trace.windows(2) {
            assert_eq!(w[1].pc, w[0].next_pc());
        }
    }

    #[test]
    fn optimized_layout_reduces_taken_ratio() {
        // The central phenomenon the paper exploits: layout optimization
        // aligns branches towards not-taken.
        let cfg = ProgramGenerator::new(GenParams::default_int(), 42).generate();
        let taken_ratio = |lay: &layout::Layout| -> f64 {
            let img = CodeImage::build(&cfg, lay);
            let mut taken = 0u64;
            let mut total = 0u64;
            for d in Executor::new(&cfg, &img, 77).take(200_000) {
                if let Some(c) = d.control {
                    if c.kind == BranchKind::Cond {
                        total += 1;
                        taken += u64::from(c.taken);
                    }
                }
            }
            taken as f64 / total as f64
        };
        let base = taken_ratio(&layout::natural(&cfg));
        let prof = sfetch_cfg::EdgeProfile::from_expected(&cfg);
        let opt = taken_ratio(&layout::pettis_hansen(&cfg, &prof));
        assert!(
            opt + 0.05 < base,
            "optimized layout should reduce taken conditionals: base={base:.3} opt={opt:.3}"
        );
    }

    #[test]
    fn mem_addresses_follow_patterns() {
        use sfetch_isa::{InstClass, MemPattern, StaticInst};
        let mut bld = CfgBuilder::new();
        let f = bld.add_func("main");
        let ld = StaticInst::memory(
            InstClass::Load,
            MemPattern::new(Addr::new(0x9000), 8, 4),
            sfetch_isa::DepDistance::NONE,
        );
        let body = bld.add_block_with(f, vec![ld]);
        let exit = bld.add_block(f, 1);
        bld.set_cond(
            body,
            body,
            exit,
            CondBehavior::Loop { trip: TripCount::Fixed(10) },
        );
        bld.set_return(exit);
        let cfg = bld.finish().expect("valid");
        let lay = layout::natural(&cfg);
        let img = CodeImage::build(&cfg, &lay);
        let addrs: Vec<Addr> = Executor::new(&cfg, &img, 0)
            .take(40)
            .filter_map(|d| d.mem_addr)
            .collect();
        assert!(addrs.len() >= 8);
        assert_eq!(addrs[0], Addr::new(0x9000));
        assert_eq!(addrs[1], Addr::new(0x9008));
        assert_eq!(addrs[4], Addr::new(0x9000), "span 4 wraps");
    }
}
