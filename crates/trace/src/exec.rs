//! The architectural executor: deterministic committed-path generation.

use std::collections::VecDeque;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use sfetch_cfg::{Cfg, CodeImage, CondBehavior, IndirectSelect, Terminator, TripCount};
use sfetch_isa::Addr;

use crate::record::{DynControl, DynInst};

/// Maximum conditional-outcome history retained for
/// [`CondBehavior::Correlated`] evaluation.
const HIST_LEN: usize = 16;

/// Per-branch evaluation state.
#[derive(Debug, Clone, Default)]
struct CondState {
    /// Next index into a [`CondBehavior::Pattern`].
    pattern_idx: u32,
    /// Remaining latch evaluations of the current loop execution.
    loop_remaining: Option<u32>,
}

/// Architectural executor over a laid-out program.
///
/// `Executor` walks the [`CodeImage`] instruction by instruction, evaluating
/// the CFG's behaviour models at control transfers, maintaining the call
/// stack, and generating load/store addresses from each instruction's
/// [`sfetch_isa::MemPattern`]. It is an **infinite**, deterministic iterator:
/// the same `(cfg, image, seed)` triple always produces the same trace, and
/// `main` is generated with an effectively unbounded outer loop.
///
/// The executor is the simulator's *oracle*: fetch engines speculate against
/// the image, and the processor compares their predictions with the
/// executor's outcomes.
#[derive(Debug)]
pub struct Executor<'a> {
    cfg: &'a Cfg,
    image: &'a CodeImage,
    rng: SmallRng,
    pc: Addr,
    seq: u64,
    cond_state: Vec<CondState>,
    indirect_idx: Vec<u32>,
    call_stack: Vec<Addr>,
    hist: VecDeque<bool>,
    exec_count: Vec<u64>,
}

impl<'a> Executor<'a> {
    /// Creates an executor starting at the image entry point.
    ///
    /// # Panics
    ///
    /// Panics if `image` was not built from `cfg` (detected lazily when an
    /// instruction's owner block is inconsistent).
    pub fn new(cfg: &'a Cfg, image: &'a CodeImage, seed: u64) -> Self {
        Executor {
            cfg,
            image,
            rng: SmallRng::seed_from_u64(seed),
            pc: image.entry(),
            seq: 0,
            cond_state: vec![CondState::default(); cfg.num_blocks()],
            indirect_idx: vec![0; cfg.num_blocks()],
            call_stack: Vec::with_capacity(64),
            hist: VecDeque::with_capacity(HIST_LEN),
            exec_count: vec![0; image.len_insts()],
        }
    }

    /// Current program counter (address of the next instruction to commit).
    #[inline]
    pub fn pc(&self) -> Addr {
        self.pc
    }

    /// Number of instructions committed so far.
    #[inline]
    pub fn committed(&self) -> u64 {
        self.seq
    }

    /// Current call-stack depth.
    #[inline]
    pub fn call_depth(&self) -> usize {
        self.call_stack.len()
    }

    fn eval_cond(&mut self, owner: sfetch_cfg::BlockId, beh: &CondBehavior) -> bool {
        let st = &mut self.cond_state[owner.index()];
        let logical = match beh {
            CondBehavior::Bernoulli { p_taken } => self.rng.random_bool(p_taken.clamp(0.0, 1.0)),
            CondBehavior::Pattern(pat) => {
                if pat.is_empty() {
                    false
                } else {
                    let v = pat[st.pattern_idx as usize % pat.len()];
                    st.pattern_idx = st.pattern_idx.wrapping_add(1);
                    v
                }
            }
            CondBehavior::Loop { trip } => {
                let remaining = match st.loop_remaining {
                    Some(r) => r,
                    None => sample_trip(&mut self.rng, *trip),
                };
                if remaining > 1 {
                    st.loop_remaining = Some(remaining - 1);
                    true // stay in the loop: logical taken edge is the back-edge
                } else {
                    st.loop_remaining = None;
                    false
                }
            }
            CondBehavior::Correlated { dist, invert, noise } => {
                let noisy = self.rng.random_bool(noise.clamp(0.0, 1.0));
                let base = if noisy || (*dist as usize) > self.hist.len() {
                    self.rng.random_bool(0.5)
                } else {
                    self.hist[self.hist.len() - *dist as usize]
                };
                base ^ invert
            }
        };
        if self.hist.len() == HIST_LEN {
            self.hist.pop_front();
        }
        self.hist.push_back(logical);
        logical
    }

    fn pick_weighted<T: Copy>(&mut self, items: &[(T, u32)]) -> T {
        let total: u64 = items.iter().map(|&(_, w)| u64::from(w.max(1))).sum();
        let mut r = self.rng.random_range(0..total.max(1));
        for &(item, w) in items {
            let w = u64::from(w.max(1));
            if r < w {
                return item;
            }
            r -= w;
        }
        items.last().expect("non-empty weighted list").0
    }

    fn pick_indirect<T: Copy>(
        &mut self,
        owner: sfetch_cfg::BlockId,
        items: &[(T, u32)],
        select: &IndirectSelect,
    ) -> T {
        match select {
            IndirectSelect::Weighted => self.pick_weighted(items),
            IndirectSelect::Cyclic(seq) => {
                if seq.is_empty() {
                    return self.pick_weighted(items);
                }
                let idx = &mut self.indirect_idx[owner.index()];
                let slot = seq[*idx as usize % seq.len()] as usize % items.len();
                *idx = idx.wrapping_add(1);
                items[slot].0
            }
        }
    }

    /// Executes one instruction and advances the architectural state.
    fn step(&mut self) -> DynInst {
        let slot = self
            .image
            .slot_of(self.pc)
            .unwrap_or_else(|| panic!("executor left the image at {}", self.pc));
        let ii = *self.image.inst(slot);
        let pc = self.pc;

        let mem_addr = ii.inst.mem_pattern().map(|p| {
            let k = self.exec_count[slot];
            self.exec_count[slot] += 1;
            p.address(k)
        });

        let control = ii.control.map(|attr| {
            use sfetch_isa::BranchKind as BK;
            let owner = attr.owner;
            let (taken, target) = if attr.is_fixup {
                (true, attr.target.expect("fixup jumps are direct"))
            } else {
                match attr.kind {
                    BK::Jump => (true, attr.target.expect("jumps are direct")),
                    BK::Cond => {
                        let beh = match self.cfg.block(owner).terminator() {
                            Terminator::Cond { behavior, .. } => behavior.clone(),
                            t => panic!("image cond branch at {pc} maps to {t:?}"),
                        };
                        let logical = self.eval_cond(owner, &beh);
                        let physical = logical ^ attr.flipped;
                        (physical, attr.target.expect("cond branches are direct"))
                    }
                    BK::Call => {
                        self.call_stack.push(attr.fallthrough);
                        (true, attr.target.expect("calls are direct"))
                    }
                    BK::IndirectCall => {
                        let (callees, select) = match self.cfg.block(owner).terminator() {
                            Terminator::IndirectCall { callees, select, .. } => {
                                (callees.clone(), select.clone())
                            }
                            t => panic!("image indirect call at {pc} maps to {t:?}"),
                        };
                        let callee = self.pick_indirect(owner, &callees, &select);
                        self.call_stack.push(attr.fallthrough);
                        let entry = self.cfg.func(callee).entry();
                        (true, self.image.block_addr(entry))
                    }
                    BK::Return => {
                        // An empty stack means `main` returned; restart the
                        // program (the generator's main never does, but
                        // hand-built programs may).
                        let t = self.call_stack.pop().unwrap_or_else(|| self.image.entry());
                        (true, t)
                    }
                    BK::IndirectJump => {
                        let (targets, select) = match self.cfg.block(owner).terminator() {
                            Terminator::IndirectJump { targets, select } => {
                                (targets.clone(), select.clone())
                            }
                            t => panic!("image indirect jump at {pc} maps to {t:?}"),
                        };
                        let tb = self.pick_indirect(owner, &targets, &select);
                        (true, self.image.block_addr(tb))
                    }
                }
            };
            let next_pc = if taken { target } else { attr.fallthrough };
            DynControl { kind: attr.kind, taken, target, next_pc, is_fixup: attr.is_fixup }
        });

        self.pc = match control {
            Some(c) => c.next_pc,
            None => pc.next_inst(),
        };
        let rec = DynInst { seq: self.seq, pc, inst: ii.inst, mem_addr, control };
        self.seq += 1;
        rec
    }
}

impl Iterator for Executor<'_> {
    type Item = DynInst;

    fn next(&mut self) -> Option<DynInst> {
        Some(self.step())
    }
}

fn sample_trip(rng: &mut SmallRng, trip: TripCount) -> u32 {
    match trip {
        TripCount::Fixed(n) => n.max(1),
        TripCount::Uniform { lo, hi } => {
            let lo = lo.max(1);
            let hi = hi.max(lo);
            rng.random_range(lo..=hi)
        }
        TripCount::Geometric { mean } => {
            let mean = f64::from(mean.max(1));
            let u: f64 = rng.random();
            let v = (1.0 - u).ln() / (1.0 - 1.0 / mean).ln();
            (v as u32).clamp(1, 1_000_000)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfetch_cfg::builder::CfgBuilder;
    use sfetch_cfg::gen::{GenParams, ProgramGenerator};
    use sfetch_cfg::{layout, CodeImage};
    use sfetch_isa::BranchKind;

    fn loop_cfg(trip: u32) -> Cfg {
        let mut bld = CfgBuilder::new();
        let f = bld.add_func("main");
        let body = bld.add_block(f, 3);
        let exit = bld.add_block(f, 1);
        bld.set_cond(body, body, exit, CondBehavior::Loop { trip: TripCount::Fixed(trip) });
        bld.set_return(exit);
        bld.finish().expect("valid")
    }

    #[test]
    fn fixed_loop_runs_exact_trip_count() {
        let cfg = loop_cfg(5);
        let lay = layout::natural(&cfg);
        let img = CodeImage::build(&cfg, &lay);
        let mut exec = Executor::new(&cfg, &img, 0);
        // Count body executions before the first exit (branch not taken).
        let mut body_runs = 0;
        for d in &mut exec {
            if let Some(c) = d.control {
                if c.kind == BranchKind::Cond {
                    body_runs += 1;
                    if !c.taken {
                        break;
                    }
                }
            }
        }
        assert_eq!(body_runs, 5, "latch evaluated trip times, last one exits");
    }

    #[test]
    fn trace_is_deterministic() {
        let cfg = ProgramGenerator::new(GenParams::small(), 3).generate();
        let lay = layout::natural(&cfg);
        let img = CodeImage::build(&cfg, &lay);
        let a: Vec<_> = Executor::new(&cfg, &img, 11).take(5000).collect();
        let b: Vec<_> = Executor::new(&cfg, &img, 11).take(5000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_diverge() {
        let cfg = ProgramGenerator::new(GenParams::small(), 3).generate();
        let lay = layout::natural(&cfg);
        let img = CodeImage::build(&cfg, &lay);
        let a: Vec<_> = Executor::new(&cfg, &img, 1).take(5000).collect();
        let b: Vec<_> = Executor::new(&cfg, &img, 2).take(5000).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn control_flow_is_consistent() {
        // Every committed instruction's pc must equal the previous one's
        // next_pc.
        let cfg = ProgramGenerator::new(GenParams::small(), 8).generate();
        let lay = layout::natural(&cfg);
        let img = CodeImage::build(&cfg, &lay);
        let trace: Vec<_> = Executor::new(&cfg, &img, 9).take(20_000).collect();
        for w in trace.windows(2) {
            assert_eq!(w[1].pc, w[0].next_pc(), "discontinuity at seq {}", w[0].seq);
        }
    }

    #[test]
    fn returns_match_calls() {
        let cfg = ProgramGenerator::new(GenParams::small(), 4).generate();
        let lay = layout::natural(&cfg);
        let img = CodeImage::build(&cfg, &lay);
        let mut exec = Executor::new(&cfg, &img, 5);
        let mut stack: Vec<Addr> = Vec::new();
        for d in (&mut exec).take(50_000) {
            if let Some(c) = d.control {
                match c.kind {
                    BranchKind::Call | BranchKind::IndirectCall if !c.is_fixup => {
                        stack.push(d.pc.next_inst());
                    }
                    BranchKind::Return => {
                        if let Some(expect) = stack.pop() {
                            assert_eq!(c.target, expect, "return to wrong address");
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn executor_works_under_optimized_layout() {
        let cfg = ProgramGenerator::new(GenParams::small(), 6).generate();
        let prof = sfetch_cfg::EdgeProfile::from_expected(&cfg);
        let lay = layout::pettis_hansen(&cfg, &prof);
        let img = CodeImage::build(&cfg, &lay);
        let trace: Vec<_> = Executor::new(&cfg, &img, 9).take(20_000).collect();
        for w in trace.windows(2) {
            assert_eq!(w[1].pc, w[0].next_pc());
        }
    }

    #[test]
    fn optimized_layout_reduces_taken_ratio() {
        // The central phenomenon the paper exploits: layout optimization
        // aligns branches towards not-taken.
        let cfg = ProgramGenerator::new(GenParams::default_int(), 42).generate();
        let taken_ratio = |lay: &layout::Layout| -> f64 {
            let img = CodeImage::build(&cfg, lay);
            let mut taken = 0u64;
            let mut total = 0u64;
            for d in Executor::new(&cfg, &img, 77).take(200_000) {
                if let Some(c) = d.control {
                    if c.kind == BranchKind::Cond {
                        total += 1;
                        taken += u64::from(c.taken);
                    }
                }
            }
            taken as f64 / total as f64
        };
        let base = taken_ratio(&layout::natural(&cfg));
        let prof = sfetch_cfg::EdgeProfile::from_expected(&cfg);
        let opt = taken_ratio(&layout::pettis_hansen(&cfg, &prof));
        assert!(
            opt + 0.05 < base,
            "optimized layout should reduce taken conditionals: base={base:.3} opt={opt:.3}"
        );
    }

    #[test]
    fn mem_addresses_follow_patterns() {
        use sfetch_isa::{InstClass, MemPattern, StaticInst};
        let mut bld = CfgBuilder::new();
        let f = bld.add_func("main");
        let ld = StaticInst::memory(
            InstClass::Load,
            MemPattern::new(Addr::new(0x9000), 8, 4),
            sfetch_isa::DepDistance::NONE,
        );
        let body = bld.add_block_with(f, vec![ld]);
        let exit = bld.add_block(f, 1);
        bld.set_cond(
            body,
            body,
            exit,
            CondBehavior::Loop { trip: TripCount::Fixed(10) },
        );
        bld.set_return(exit);
        let cfg = bld.finish().expect("valid");
        let lay = layout::natural(&cfg);
        let img = CodeImage::build(&cfg, &lay);
        let addrs: Vec<Addr> = Executor::new(&cfg, &img, 0)
            .take(40)
            .filter_map(|d| d.mem_addr)
            .collect();
        assert!(addrs.len() >= 8);
        assert_eq!(addrs[0], Addr::new(0x9000));
        assert_eq!(addrs[1], Addr::new(0x9008));
        assert_eq!(addrs[4], Addr::new(0x9000), "span 4 wraps");
    }
}
