//! # sfetch-trace
//!
//! The architectural (functional) execution layer of the `stream-fetch`
//! simulator: it walks a laid-out program ([`sfetch_cfg::CodeImage`])
//! evaluating the branch-behaviour models attached to the CFG, and yields
//! the *committed-path* dynamic instruction sequence.
//!
//! The paper's methodology (§4.1) is trace-driven simulation: the timing
//! simulator consumes a correct-path trace while its front-end speculates
//! against the static basic block dictionary. This crate is the trace side
//! of that split:
//!
//! * [`Executor`] — deterministic, infinite iterator of [`DynInst`]s (the
//!   trace; seeded, so *train* vs *ref* inputs are just different seeds),
//! * [`ArchCheckpoint`] — serializable architectural state so a long
//!   trace can be suspended and resumed bit-identically (the basis of the
//!   `sfetch-sample` shard runner),
//! * [`profile_cfg`] — runs a training execution to produce the
//!   [`sfetch_cfg::EdgeProfile`] consumed by the layout optimizer,
//! * [`stream::StreamExtractor`] — segments a trace into *instruction
//!   streams* exactly as the paper defines them (§1),
//! * [`stats::TraceStats`] — the workload-characterization numbers the
//!   paper's Tables 1/3 discussion relies on (taken ratios, basic-block and
//!   stream sizes).
//!
//! ```
//! use sfetch_cfg::{gen::{GenParams, ProgramGenerator}, layout, CodeImage};
//! use sfetch_trace::Executor;
//!
//! let cfg = ProgramGenerator::new(GenParams::small(), 1).generate();
//! let lay = layout::natural(&cfg);
//! let img = CodeImage::build(&cfg, &lay);
//! let mut exec = Executor::new(&cfg, &img, 7);
//! let first: Vec<_> = (&mut exec).take(100).collect();
//! assert_eq!(first.len(), 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ckpt;
pub mod exec;
pub mod profile;
pub mod record;
pub mod stats;
pub mod stream;

pub use ckpt::{digest_bytes, ArchCheckpoint, Digest};
pub use exec::{trace_fingerprint, Executor, OracleSource};
pub use profile::profile_cfg;
pub use record::{DynControl, DynInst};
pub use stats::TraceStats;
pub use stream::{Stream, StreamExtractor, StreamStats};
