//! `sfetch-serve`: a **resident simulation daemon** owning one warm
//! checkpoint store and one fleet ledger per request family.
//!
//! The one-shot binaries pay their fixed costs — architectural
//! fast-forward, functional warming, ledger replay — on every
//! invocation. A resident process pays them once and amortizes them
//! across every experiment a working session throws at it:
//!
//! - **Request dedup (singleflight).** Requests are grouped by
//!   [`GridRequest::family_tag`] — the fingerprint of everything a
//!   cell's output bytes depend on — and each family's canonical cells
//!   live in one persistent [`sfetch_fleet::Ledger`]. Two overlapping
//!   requests submitted concurrently union their cells into one run:
//!   the overlap is computed once and streamed to both subscribers
//!   (`shared` counter); a resubmit finds every cell `Done` in the
//!   ledger and resumes with **zero** recomputation (`resumed`
//!   counter).
//! - **Incremental result streaming.** Each client connection receives
//!   line-JSON [`ServeEvent`]s as cells complete — per-window `point`
//!   rows plus running `estimate` (confidence-interval) updates —
//!   terminated by a `final` record. The client merges the points with
//!   the same `merge_grid` the one-shot bins use, so the final table is
//!   byte-identical to a local run.
//! - **Warm-engine-state banking.** Requests submitted with
//!   `warm_bank` run their cells through
//!   `StoredSampler::with_warm_bank`, so the detailed-warming walk of a
//!   window is persisted per (engine, config, workload, offset) and
//!   resident reruns skip it. Banked state changes host time only,
//!   never output bytes, so banked and unbanked requests share one
//!   family.
//!
//! The wire protocol (one JSON object per line over a Unix domain
//! socket) is defined in [`sfetch_bench::driver`] — the daemon and the
//! clients share one codec, one cell-execution path
//! ([`sfetch_bench::driver::cell_group_bodies`]), and one validator, so
//! the resident and one-shot paths cannot drift. Requests submitted
//! with `--batch N` lease compatible cells (same window range) in
//! groups of up to `N`, and each group shares one batched sweep — one
//! fast-forward, one functional reference stream — through the same
//! [`BatchSampler`](sfetch_sample::BatchSampler) the one-shot grids
//! use, so resident output stays byte-identical.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use sfetch_bench::driver::{cell_group_bodies, validate_shard_text, GridRequest, ServeEvent};
use sfetch_bench::grid::parse_shard_file;
use sfetch_bench::{workload_by_name, HarnessOpts};
use sfetch_fleet::{
    now_ms, run_fleet_notify, seal, CellId, FleetConfig, FleetError, HeartbeatGuard, Launcher,
    Ledger, PollResult, WorkerHandle,
};
use sfetch_sample::{estimate, CheckpointStore, SampleConfig, StoredSampler};
use sfetch_workloads::{LayoutChoice, Workload};

pub mod signals;

/// How often in-process cell workers touch their heartbeat file
/// (matches the fleet's process workers).
const HEARTBEAT_EVERY: Duration = Duration::from_millis(200);

/// How long the daemon waits for a connected client's first line.
const READ_TIMEOUT: Duration = Duration::from_secs(30);

/// How long the startup probe waits for an incumbent daemon's pong.
const PROBE_TIMEOUT: Duration = Duration::from_secs(2);

// ---------------------------------------------------------------------
// In-process cell workers
// ---------------------------------------------------------------------

/// [`Launcher`] over **threads** of the daemon process: each worker
/// opens the shared store, runs
/// [`sfetch_bench::driver::cell_group_bodies`] — the exact code path
/// fleet *process* workers run, batched sweep included — seals each
/// body and writes it atomically to its own output file. The
/// supervisor's retry/timeout machinery applies unchanged.
pub struct ThreadLauncher {
    w: Arc<Workload>,
    scfg: SampleConfig,
    opts: HarnessOpts,
    store_dir: PathBuf,
    ids: AtomicU64,
}

impl ThreadLauncher {
    /// Builds a launcher for one family run.
    pub fn new(w: Arc<Workload>, scfg: SampleConfig, opts: HarnessOpts, store_dir: PathBuf) -> Self {
        ThreadLauncher { w, scfg, opts, store_dir, ids: AtomicU64::new(1) }
    }
}

/// Handle to one in-process cell worker.
pub struct ThreadHandle {
    done: Arc<AtomicBool>,
    err: Arc<Mutex<Option<String>>>,
    id: u64,
}

impl WorkerHandle for ThreadHandle {
    fn poll(&mut self) -> PollResult {
        if !self.done.load(Ordering::SeqCst) {
            return PollResult::Running;
        }
        match self.err.lock().expect("worker error lock").take() {
            None => PollResult::Exited { success: true, detail: "ok".into() },
            Some(e) => PollResult::Exited { success: false, detail: e },
        }
    }

    fn kill(&mut self) {
        // Threads cannot be force-killed; the worker is detached and its
        // eventual output ignored (it writes atomically, so a late write
        // is a valid file for the *retry* to resume from — idempotence
        // makes the race harmless).
    }

    fn worker_id(&self) -> u64 {
        self.id
    }
}

impl Launcher for ThreadLauncher {
    type Handle = ThreadHandle;

    fn launch(
        &self,
        cell: &CellId,
        attempt: u32,
        out: &Path,
        heartbeat: &Path,
    ) -> Result<ThreadHandle, FleetError> {
        self.launch_group(
            std::slice::from_ref(cell),
            &[attempt],
            std::slice::from_ref(&out.to_path_buf()),
            heartbeat,
        )
    }

    fn launch_group(
        &self,
        cells: &[CellId],
        _attempts: &[u32],
        outs: &[PathBuf],
        heartbeat: &Path,
    ) -> Result<ThreadHandle, FleetError> {
        let done = Arc::new(AtomicBool::new(false));
        let err: Arc<Mutex<Option<String>>> = Arc::new(Mutex::new(None));
        let (done2, err2) = (Arc::clone(&done), Arc::clone(&err));
        let (w, scfg, opts) = (Arc::clone(&self.w), self.scfg, self.opts);
        let (cells, outs, heartbeat, store_dir) =
            (cells.to_vec(), outs.to_vec(), heartbeat.to_path_buf(), self.store_dir.clone());
        std::thread::spawn(move || {
            let _hb = HeartbeatGuard::start(&heartbeat, HEARTBEAT_EVERY);
            let res = (|| -> Result<(), String> {
                let store = CheckpointStore::open(&store_dir)
                    .map_err(|e| e.to_string())?
                    .with_cap_bytes(opts.store_cap_bytes);
                // One batched sweep produces every cell's body; each is
                // sealed and written atomically so the supervisor can
                // validate (and charge) each cell independently.
                let bodies = cell_group_bodies(&w, &cells, scfg, &opts, &store)?;
                for (body, out) in bodies.iter().zip(&outs) {
                    let tmp = out.with_extension("part");
                    std::fs::write(&tmp, seal(body).as_bytes()).map_err(|e| e.to_string())?;
                    std::fs::rename(&tmp, out).map_err(|e| e.to_string())?;
                }
                Ok(())
            })();
            if let Err(e) = res {
                *err2.lock().expect("worker error lock") = Some(e);
            }
            done2.store(true, Ordering::SeqCst);
        });
        Ok(ThreadHandle { done, err, id: self.ids.fetch_add(1, Ordering::SeqCst) })
    }
}

// ---------------------------------------------------------------------
// Per-request result streams
// ---------------------------------------------------------------------

/// The append-only event history of one request, doubling as the live
/// stream (submitters block on the condvar for new lines) and the
/// replay source (`tail` re-reads from index 0).
pub struct RequestLog {
    inner: Mutex<LogInner>,
    cv: Condvar,
}

struct LogInner {
    lines: Vec<String>,
    done: bool,
}

impl Default for RequestLog {
    fn default() -> Self {
        RequestLog { inner: Mutex::new(LogInner { lines: Vec::new(), done: false }), cv: Condvar::new() }
    }
}

impl RequestLog {
    /// Appends one event line and wakes every reader.
    pub fn push(&self, line: String) {
        self.inner.lock().expect("request log lock").lines.push(line);
        self.cv.notify_all();
    }

    /// Marks the stream finished (after the terminal event).
    pub fn finish(&self) {
        self.inner.lock().expect("request log lock").done = true;
        self.cv.notify_all();
    }

    /// Returns lines `from..` (blocking until at least one exists or
    /// the stream is done) plus whether the stream has finished.
    pub fn wait_from(&self, from: usize) -> (Vec<String>, bool) {
        let mut inner = self.inner.lock().expect("request log lock");
        loop {
            if inner.lines.len() > from || inner.done {
                return (inner.lines[from.min(inner.lines.len())..].to_vec(), inner.done);
            }
            inner = self.cv.wait(inner).expect("request log wait");
        }
    }

    /// Snapshot of the full history (for the on-disk mirror).
    pub fn snapshot(&self) -> Vec<String> {
        self.inner.lock().expect("request log lock").lines.clone()
    }
}

struct Pending {
    id: String,
    req: GridRequest,
    log: Arc<RequestLog>,
}

#[derive(Default)]
struct SharedState {
    queue: Mutex<Vec<Pending>>,
    logs: Mutex<BTreeMap<String, Arc<RequestLog>>>,
    stopping: AtomicBool,
}

// ---------------------------------------------------------------------
// The daemon
// ---------------------------------------------------------------------

/// Daemon configuration.
pub struct DaemonConfig {
    /// Unix-domain-socket path to listen on.
    pub socket: PathBuf,
    /// The resident checkpoint store (also holds the per-family ledgers
    /// under `fleet/` and the per-request mirrors under `serve/`).
    pub store_dir: PathBuf,
    /// Maximum concurrent in-process cell workers per family run.
    pub procs: usize,
    /// Retry budget per cell.
    pub max_retries: u32,
    /// Optional byte cap on the resident store: above it, unleased
    /// checkpoints and warm-bank entries are LRU-evicted (and healed by
    /// recomputation on demand). `None` means unbounded. This is a
    /// daemon-side knob — requests cannot widen or shrink it.
    pub store_cap_bytes: Option<u64>,
}

/// What the startup probe found at the configured socket path.
enum SocketProbe {
    /// Nothing there — bind freely.
    Absent,
    /// A daemon answered `ping` with `pong`: a live incumbent.
    Live,
    /// Something accepted the connection but did not answer `ping`.
    /// Not provably stale, so not safe to unlink.
    Busy,
    /// The file exists but nothing is listening behind it (connect is
    /// refused) — a leftover from a dead daemon, safe to unlink.
    Stale,
}

/// Probes an existing socket path before binding. Only a connection
/// *refusal* proves the path stale; any live listener — pong or not —
/// means some process still owns it.
fn probe_socket(path: &Path) -> SocketProbe {
    if !path.exists() {
        return SocketProbe::Absent;
    }
    let stream = match UnixStream::connect(path) {
        Ok(s) => s,
        Err(_) => return SocketProbe::Stale,
    };
    let _ = stream.set_read_timeout(Some(PROBE_TIMEOUT));
    let _ = stream.set_write_timeout(Some(PROBE_TIMEOUT));
    let Ok(mut w) = stream.try_clone() else { return SocketProbe::Busy };
    if w.write_all(b"{\"op\":\"ping\"}\n").is_err() {
        return SocketProbe::Busy;
    }
    let mut line = String::new();
    match BufReader::new(stream).read_line(&mut line) {
        Ok(n) if n > 0 && matches!(ServeEvent::parse(&line), Ok(ServeEvent::Pong)) => {
            SocketProbe::Live
        }
        _ => SocketProbe::Busy,
    }
}

/// The resident daemon. [`Daemon::run`] blocks until the stop flag is
/// raised (SIGTERM/SIGINT via [`signals::install`], or a test's own
/// flag), drains the in-flight family run, and removes the socket.
pub struct Daemon {
    cfg: DaemonConfig,
}

impl Daemon {
    /// Builds a daemon.
    pub fn new(cfg: DaemonConfig) -> Self {
        Daemon { cfg }
    }

    /// Serves until `stop` turns true.
    ///
    /// # Errors
    ///
    /// Socket-setup failures only — including a **live incumbent**: if
    /// another daemon answers `ping` on the configured socket, this
    /// daemon refuses to start rather than silently unlinking the
    /// incumbent's socket out from under it. Only a provably stale
    /// socket file (connection refused) is reclaimed. Per-request
    /// failures are reported to that request's client as `error`
    /// events.
    pub fn run(&self, stop: &AtomicBool) -> Result<(), String> {
        std::fs::create_dir_all(&self.cfg.store_dir)
            .map_err(|e| format!("create store dir: {e}"))?;
        match probe_socket(&self.cfg.socket) {
            SocketProbe::Absent => {}
            SocketProbe::Stale => {
                eprintln!("serve: reclaiming stale socket {}", self.cfg.socket.display());
                let _ = std::fs::remove_file(&self.cfg.socket);
            }
            SocketProbe::Live => {
                return Err(format!(
                    "a daemon is already serving on {} (it answered ping); refusing to take \
                     over its socket — stop it first or pick another --socket",
                    self.cfg.socket.display()
                ));
            }
            SocketProbe::Busy => {
                return Err(format!(
                    "{} is held by a live process that did not answer ping; refusing to \
                     remove a socket that is not provably stale",
                    self.cfg.socket.display()
                ));
            }
        }
        let listener = UnixListener::bind(&self.cfg.socket)
            .map_err(|e| format!("bind {}: {e}", self.cfg.socket.display()))?;
        listener.set_nonblocking(true).map_err(|e| format!("nonblocking listener: {e}"))?;
        eprintln!(
            "serve: listening on {} (store {})",
            self.cfg.socket.display(),
            self.cfg.store_dir.display()
        );

        let state = Arc::new(SharedState::default());
        let scheduler = {
            let state = Arc::clone(&state);
            let store_dir = self.cfg.store_dir.clone();
            let (procs, max_retries) = (self.cfg.procs, self.cfg.max_retries);
            let cap = self.cfg.store_cap_bytes;
            std::thread::spawn(move || scheduler_loop(&state, &store_dir, procs, max_retries, cap))
        };

        while !stop.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let state = Arc::clone(&state);
                    let store_dir = self.cfg.store_dir.clone();
                    std::thread::spawn(move || handle_conn(&state, &store_dir, stream));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => {
                    eprintln!("serve: accept failed: {e}");
                    std::thread::sleep(Duration::from_millis(100));
                }
            }
        }
        eprintln!("serve: stop requested, draining");
        state.stopping.store(true, Ordering::SeqCst);
        let _ = scheduler.join();
        let _ = std::fs::remove_file(&self.cfg.socket);
        eprintln!("serve: shut down cleanly");
        Ok(())
    }
}

fn handle_conn(state: &SharedState, store_dir: &Path, stream: UnixStream) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    let mut line = String::new();
    if reader.read_line(&mut line).is_err() || line.trim().is_empty() {
        return;
    }
    let send = |w: &mut UnixStream, ev: &ServeEvent| {
        let _ = w.write_all(format!("{}\n", ev.to_line()).as_bytes());
    };
    match sfetch_bench::driver::jfield_str(&line, "op").as_deref() {
        Some("ping") => send(&mut writer, &ServeEvent::Pong),
        Some("tail") => {
            let Some(id) = sfetch_bench::driver::jfield_str(&line, "id") else {
                send(&mut writer, &ServeEvent::Error { req: String::new(), msg: "tail: missing id".into() });
                return;
            };
            let log = state.logs.lock().expect("logs lock").get(&id).cloned();
            match log {
                Some(log) => stream_log(&log, &mut writer),
                None => match std::fs::read_to_string(mirror_path(store_dir, &id)) {
                    // Request from a previous daemon life: replay the
                    // on-disk mirror verbatim.
                    Ok(text) => {
                        let _ = writer.write_all(text.as_bytes());
                    }
                    Err(_) => send(
                        &mut writer,
                        &ServeEvent::Error { req: id.clone(), msg: format!("unknown request {id:?}") },
                    ),
                },
            }
        }
        Some("submit") => match GridRequest::parse_submit(&line) {
            Ok((id, req)) => {
                let log = Arc::new(RequestLog::default());
                {
                    let mut logs = state.logs.lock().expect("logs lock");
                    if logs.contains_key(&id) {
                        send(
                            &mut writer,
                            &ServeEvent::Error { req: id.clone(), msg: format!("duplicate request id {id:?}") },
                        );
                        return;
                    }
                    logs.insert(id.clone(), Arc::clone(&log));
                }
                log.push(
                    ServeEvent::Accepted {
                        req: id.clone(),
                        cells: req.canonical_cells().len() as u64,
                        windows: req.windows(),
                    }
                    .to_line(),
                );
                eprintln!(
                    "serve: accepted {id} — {} {}×{} cells, family {:016x}",
                    req.bench,
                    req.engines.len(),
                    req.widths.len(),
                    req.family_tag()
                );
                state.queue.lock().expect("queue lock").push(Pending {
                    id,
                    req,
                    log: Arc::clone(&log),
                });
                stream_log(&log, &mut writer);
            }
            Err(e) => send(&mut writer, &ServeEvent::Error { req: String::new(), msg: e }),
        },
        _ => send(
            &mut writer,
            &ServeEvent::Error { req: String::new(), msg: "unknown op (want submit/tail/ping)".into() },
        ),
    }
}

/// Streams a request log to a client from the beginning until done.
fn stream_log(log: &RequestLog, writer: &mut UnixStream) {
    let mut from = 0usize;
    loop {
        let (lines, done) = log.wait_from(from);
        from += lines.len();
        for l in &lines {
            if writer.write_all(format!("{l}\n").as_bytes()).is_err() {
                return; // client went away; the log lives on for `tail`
            }
        }
        if done && lines.is_empty() {
            return;
        }
        if done {
            // Flush any lines that raced in after `done` was set.
            let (rest, _) = log.wait_from(from);
            for l in &rest {
                let _ = writer.write_all(format!("{l}\n").as_bytes());
            }
            return;
        }
    }
}

fn mirror_path(store_dir: &Path, id: &str) -> PathBuf {
    let safe: String =
        id.chars().map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '_' }).collect();
    store_dir.join("serve").join(safe).join("events.jsonl")
}

// ---------------------------------------------------------------------
// Scheduling: family batches over the shared ledger
// ---------------------------------------------------------------------

fn scheduler_loop(
    state: &SharedState,
    store_dir: &Path,
    procs: usize,
    max_retries: u32,
    store_cap_bytes: Option<u64>,
) {
    loop {
        let mut batch: Vec<Pending> = {
            let mut q = state.queue.lock().expect("queue lock");
            std::mem::take(&mut *q)
        };
        if !batch.is_empty() {
            // Brief coalescing window: clients submitting "at the same
            // time" (a fleet of figure bins, the CI smoke's concurrent
            // pair) land in one batch, so their overlap is shared in
            // flight rather than resumed from the ledger a moment
            // later. Either way the work runs once; batching just
            // streams it to everyone on the first pass.
            std::thread::sleep(Duration::from_millis(50));
            let mut q = state.queue.lock().expect("queue lock");
            batch.append(&mut *q);
        }
        if batch.is_empty() {
            if state.stopping.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
            continue;
        }
        // Group the drained batch by family: one ledger run per family,
        // every member's cells unioned into it.
        let mut families: BTreeMap<u64, Vec<Pending>> = BTreeMap::new();
        for p in batch {
            families.entry(p.req.family_tag()).or_default().push(p);
        }
        for (tag, members) in families {
            run_family(store_dir, procs, max_retries, store_cap_bytes, tag, &members);
        }
    }
}

/// Runs one family batch: union the members' canonical cells into the
/// family ledger, execute under the fleet supervisor with in-process
/// workers, and fan each completed cell out to its subscribers.
fn run_family(
    store_dir: &Path,
    procs: usize,
    max_retries: u32,
    store_cap_bytes: Option<u64>,
    tag: u64,
    members: &[Pending],
) {
    let fail_all = |msg: &str| {
        for m in members {
            m.log.push(ServeEvent::Error { req: m.id.clone(), msg: msg.to_owned() }.to_line());
            m.log.finish();
        }
        eprintln!("serve: family {tag:016x} failed: {msg}");
    };

    // The family tag pins everything output-relevant, so the first
    // member's request is a valid representative — except the host-time
    // knobs, which we take as the batch's most generous ask.
    let rep = &members[0].req;
    let mut opts = rep.opts;
    opts.warm_bank = members.iter().any(|m| m.req.opts.warm_bank);
    opts.jobs = members.iter().map(|m| m.req.opts.jobs).max().unwrap_or(1).max(1);
    opts.batch = members.iter().map(|m| m.req.opts.batch).max().unwrap_or(1).max(1);
    // The cap governs the *daemon's* resident store, so the daemon
    // config wins over whatever the requests carried.
    opts.store_cap_bytes = store_cap_bytes;
    let scfg = rep.scfg;
    let windows = rep.windows();

    let w = Arc::new(workload_by_name(&rep.bench));
    let store = match CheckpointStore::open(store_dir) {
        Ok(s) => s.with_cap_bytes(store_cap_bytes),
        Err(e) => return fail_all(&format!("open store: {e}")),
    };
    // One architectural walk banks the family's warming-start
    // checkpoints; on the resident warm store this is verification
    // traffic only.
    {
        let img = w.image(LayoutChoice::Optimized);
        let fp = w.fingerprint(LayoutChoice::Optimized);
        let mut populate = StoredSampler::new(img, fp, w.ref_seed(), scfg, &store);
        let computed = populate.populate(windows);
        eprintln!(
            "serve: [{}] {windows} windows ready ({computed} computed, {} loaded warm)",
            w.name(),
            populate.stats().hits
        );
    }

    // Union of canonical cells; per cell, which members subscribe.
    let mut cells: Vec<CellId> = Vec::new();
    let mut subs: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, m) in members.iter().enumerate() {
        for c in m.req.canonical_cells() {
            let key = c.to_string();
            let entry = subs.entry(key).or_default();
            if entry.is_empty() {
                cells.push(c);
            }
            entry.push(i);
        }
    }

    let work_dir = store_dir.join("fleet").join(format!("{tag:016x}"));
    if let Err(e) = std::fs::create_dir_all(&work_dir) {
        return fail_all(&format!("create fleet work dir: {e}"));
    }
    let validate = |text: &str| validate_shard_text(text);
    let (mut ledger, resume) =
        match Ledger::open(work_dir.join("cells.ledger"), tag, &cells, now_ms(), &validate) {
            Ok(v) => v,
            Err(e) => return fail_all(&format!("open ledger: {e}")),
        };

    let mut cfg = FleetConfig::new(procs.min(cells.len()).max(1));
    cfg.max_retries = max_retries;
    cfg.req = members.iter().map(|m| m.id.as_str()).collect::<Vec<_>>().join(",");
    // Compatible cells (same window range) lease in groups of up to
    // `batch` and share one batched sweep per worker thread.
    cfg.group = opts.batch;

    let launcher = ThreadLauncher::new(Arc::clone(&w), scfg, opts, store_dir.to_path_buf());
    // Per-member singleflight counters: a fresh cell is *computed* for
    // its first subscriber and *shared* for every other subscriber; a
    // ledger hit is *resumed* for all of them.
    let mut computed = vec![0u64; members.len()];
    let mut resumed = vec![0u64; members.len()];
    let mut shared = vec![0u64; members.len()];
    let confidence = scfg.confidence;

    let report = run_fleet_notify(
        &cfg,
        &mut ledger,
        &launcher,
        &validate,
        resume,
        &mut |line| eprintln!("serve: [{tag:016x}] {line}"),
        &mut |done| {
            let key = done.cell.to_string();
            let Some(subscribers) = subs.get(&key) else { return };
            let points = match parse_shard_file(&done.text) {
                Ok(p) => p,
                Err(e) => {
                    // The validator admitted it, so this cannot happen;
                    // surface loudly rather than silently dropping.
                    eprintln!("serve: [{tag:016x}] unparseable done cell {key}: {e}");
                    return;
                }
            };
            let est = estimate(
                &points.iter().map(|(_, _, p)| *p).collect::<Vec<_>>(),
                confidence,
            );
            for (slot, &i) in subscribers.iter().enumerate() {
                let m = &members[i];
                if done.resumed {
                    resumed[i] += 1;
                } else if slot == 0 {
                    computed[i] += 1;
                } else {
                    shared[i] += 1;
                }
                m.log.push(
                    ServeEvent::Cell {
                        req: m.id.clone(),
                        cell: key.clone(),
                        resumed: done.resumed,
                        shared_by: subscribers.len() as u64,
                    }
                    .to_line(),
                );
                for (engine, width, p) in &points {
                    m.log.push(
                        ServeEvent::Point { engine: engine.clone(), width: *width, point: *p }
                            .to_line(),
                    );
                }
                m.log.push(
                    ServeEvent::Estimate {
                        engine: done.cell.engine.clone(),
                        width: done.cell.width,
                        windows: est.windows,
                        ipc: est.ipc,
                        lo: est.ipc_lo,
                        hi: est.ipc_hi,
                    }
                    .to_line(),
                );
            }
        },
    );

    match report {
        Ok(report) => {
            let status = if report.incomplete.is_empty() { "complete" } else { "degraded" };
            for (i, m) in members.iter().enumerate() {
                m.log.push(
                    ServeEvent::Final {
                        req: m.id.clone(),
                        status: status.into(),
                        computed: computed[i],
                        resumed: resumed[i],
                        shared: shared[i],
                    }
                    .to_line(),
                );
                m.log.finish();
                write_mirror(store_dir, &m.id, &m.log);
                eprintln!(
                    "serve: {} {status} — {} computed, {} resumed, {} shared",
                    m.id, computed[i], resumed[i], shared[i]
                );
            }
        }
        Err(e) => fail_all(&format!("fleet run: {e}")),
    }
}

/// Mirrors a finished request's full event history under
/// `<store>/serve/<id>/events.jsonl` so `tail` outlives daemon
/// restarts.
fn write_mirror(store_dir: &Path, id: &str, log: &RequestLog) {
    let path = mirror_path(store_dir, id);
    if let Some(dir) = path.parent() {
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
    }
    let mut text = log.snapshot().join("\n");
    text.push('\n');
    let tmp = path.with_extension("part");
    if std::fs::write(&tmp, text.as_bytes()).is_ok() {
        let _ = std::fs::rename(&tmp, &path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_log_streams_and_replays() {
        let log = Arc::new(RequestLog::default());
        log.push("a".into());
        log.push("b".into());
        let (lines, done) = log.wait_from(0);
        assert_eq!(lines, vec!["a".to_owned(), "b".to_owned()]);
        assert!(!done);
        let log2 = Arc::clone(&log);
        let t = std::thread::spawn(move || log2.wait_from(2));
        log.push("c".into());
        log.finish();
        let (lines, _) = t.join().expect("reader thread");
        assert_eq!(lines, vec!["c".to_owned()]);
        // Replay from the start still sees everything.
        let (all, done) = log.wait_from(0);
        assert_eq!(all.len(), 3);
        assert!(done);
    }

    #[test]
    fn mirror_path_sanitizes_ids() {
        let p = mirror_path(Path::new("/s"), "../../etc/passwd");
        assert_eq!(p, Path::new("/s/serve/______etc_passwd/events.jsonl"));
    }
}
