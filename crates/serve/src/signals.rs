//! Minimal signal handling for clean daemon shutdown.
//!
//! The workspace vendors no `libc`/`signal-hook`, so this is the
//! smallest possible FFI surface: `signal(2)` pointing SIGTERM and
//! SIGINT at a handler that sets one atomic flag. Everything
//! async-signal-unsafe (logging, draining, unlinking the socket)
//! happens on the normal control flow that polls the flag.

use std::sync::atomic::{AtomicBool, Ordering};

/// Raised by the handler; polled by [`crate::Daemon::run`].
static STOP: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

extern "C" fn on_stop_signal(_sig: i32) {
    // Only async-signal-safe work here: one atomic store.
    STOP.store(true, Ordering::SeqCst);
}

/// Installs SIGTERM/SIGINT handlers and returns the stop flag they
/// raise. Idempotent.
pub fn install() -> &'static AtomicBool {
    let handler = on_stop_signal as extern "C" fn(i32) as usize;
    unsafe {
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
    &STOP
}
