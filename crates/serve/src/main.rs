//! The `sfetch-serve` binary: resident simulation daemon plus thin
//! clients.
//!
//! ```text
//! # Resident daemon: one warm store, one ledger per request family.
//! sfetch-serve serve --socket /tmp/sfetch.sock --store /tmp/sfetch-store \
//!     [--procs N] [--max-retries N]
//!
//! # Submit a grid request and stream the raw result events to stdout.
//! sfetch-serve submit --socket /tmp/sfetch.sock \
//!     [--bench phased] [--engines all|…] [--widths all|…] \
//!     [--grid-total N] [--grid-sample U,Wf,Wd,D[,Wm]] [--warm-bank] \
//!     [--req ID] [other figure8_sampled grid flags]
//!
//! # Replay a request's event stream (live or from the mirror).
//! sfetch-serve tail --socket /tmp/sfetch.sock --req ID
//!
//! # Readiness probe (exit 0 iff the daemon answers).
//! sfetch-serve ping --socket /tmp/sfetch.sock
//! ```
//!
//! `submit` speaks the same wire protocol as `figure8_sampled --serve`
//! / `figure9_sampled --serve`; those binaries additionally merge the
//! streamed points into the byte-identical one-shot tables, while this
//! client prints the raw event lines (exit 0 complete, 2 degraded,
//! 1 error).

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::ExitCode;

use sfetch_bench::driver::{
    or_die, submit_and_collect, ArgDefaults, CommonArgs, ScheduleAxis, ServeEvent,
};
use sfetch_serve::{signals, Daemon, DaemonConfig};

fn usage() -> ExitCode {
    eprintln!(
        "usage: sfetch-serve serve --socket PATH --store DIR [--procs N] [--max-retries N] [--store-cap-bytes N]\n\
         \x20      sfetch-serve submit --socket PATH [grid flags…]\n\
         \x20      sfetch-serve tail --socket PATH --req ID\n\
         \x20      sfetch-serve ping --socket PATH"
    );
    ExitCode::FAILURE
}

/// Pulls `--flag VALUE` out of an argument list.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let at = args.iter().position(|a| a == flag)?;
    if at + 1 >= args.len() {
        panic!("{flag} requires a value");
    }
    args.remove(at);
    Some(args.remove(at))
}

fn run_serve(mut args: Vec<String>) -> ExitCode {
    let socket = take_flag(&mut args, "--socket").map(PathBuf::from);
    let store = take_flag(&mut args, "--store").map(PathBuf::from);
    let procs = take_flag(&mut args, "--procs")
        .map(|v| v.parse().expect("--procs requires a number >= 1"))
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(2, |n| n.get()));
    let max_retries = take_flag(&mut args, "--max-retries")
        .map(|v| v.parse().expect("--max-retries requires a number"))
        .unwrap_or(3);
    let store_cap_bytes = take_flag(&mut args, "--store-cap-bytes")
        .map(|v| v.parse().expect("--store-cap-bytes requires a byte count >= 1"));
    let (Some(socket), Some(store)) = (socket, store) else {
        return usage();
    };
    if !args.is_empty() {
        eprintln!("error: unknown serve arguments {args:?}");
        return ExitCode::FAILURE;
    }
    let stop = signals::install();
    let daemon =
        Daemon::new(DaemonConfig { socket, store_dir: store, procs, max_retries, store_cap_bytes });
    match daemon.run(stop) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_submit(mut args: Vec<String>) -> ExitCode {
    // `submit --socket PATH` is the figure bins' `--serve PATH`.
    for a in &mut args {
        if a == "--socket" {
            *a = "--serve".into();
        }
    }
    let a = CommonArgs::parse_list(
        args,
        &ArgDefaults { benches: "phased", engines: "all", widths: "all", procs: 1 },
    );
    let Some(sock) = &a.serve else {
        eprintln!("error: submit requires --socket PATH");
        return ExitCode::FAILURE;
    };
    let req = a.request(a.bench(), ScheduleAxis::Grid);
    let id = a.req_id.clone().unwrap_or_else(|| format!("submit-{}", std::process::id()));
    let out = or_die(submit_and_collect(sock, &id, &req, |line| println!("{line}")));
    let _ = std::io::stdout().flush();
    if out.status == "complete" { ExitCode::SUCCESS } else { ExitCode::from(2) }
}

fn one_line_op(sock: &str, line: &str) -> Result<UnixStream, String> {
    let stream =
        UnixStream::connect(sock).map_err(|e| format!("connect {sock}: {e}"))?;
    let mut w = stream.try_clone().map_err(|e| format!("clone socket: {e}"))?;
    w.write_all(format!("{line}\n").as_bytes()).map_err(|e| format!("send: {e}"))?;
    Ok(stream)
}

fn run_tail(mut args: Vec<String>) -> ExitCode {
    let (Some(sock), Some(id)) =
        (take_flag(&mut args, "--socket"), take_flag(&mut args, "--req"))
    else {
        return usage();
    };
    let line = sfetch_obs::Row::new().s("op", "tail").s("id", &id).finish();
    let stream = or_die(one_line_op(&sock, &line));
    let mut status = ExitCode::SUCCESS;
    for l in BufReader::new(stream).lines() {
        let l = or_die(l.map_err(|e| format!("read stream: {e}")));
        println!("{l}");
        if let Ok(ServeEvent::Error { .. }) = ServeEvent::parse(&l) {
            status = ExitCode::FAILURE;
        }
    }
    status
}

fn run_ping(mut args: Vec<String>) -> ExitCode {
    let Some(sock) = take_flag(&mut args, "--socket") else {
        return usage();
    };
    let stream = match one_line_op(&sock, "{\"op\":\"ping\"}") {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut line = String::new();
    match BufReader::new(stream).read_line(&mut line) {
        Ok(_) if matches!(ServeEvent::parse(&line), Ok(ServeEvent::Pong)) => {
            println!("pong");
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("error: no pong from {sock}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }
    let cmd = args.remove(0);
    match cmd.as_str() {
        "serve" => run_serve(args),
        "submit" => run_submit(args),
        "tail" => run_tail(args),
        "ping" => run_ping(args),
        _ => usage(),
    }
}
