//! Differential tests: the event-driven back-end must retire the
//! bit-identical instruction/cycle sequence as the legacy per-cycle ROB
//! scan, for every fetch engine, in lockstep and at large flight depths.
//!
//! Commits are the oracle's instruction sequence by construction, so
//! equal per-cycle `SimStats` (committed count, cycle count, cache and
//! misprediction counters) pin the *(instruction, cycle)* retire sequence
//! exactly: any divergence in issue order, memory-access order, or squash
//! handling would show up in the first differing cycle.

use sfetch_cfg::gen::{GenParams, ProgramGenerator};
use sfetch_cfg::{layout, CodeImage};
use sfetch_core::{simulate, Processor, ProcessorConfig};
use sfetch_fetch::EngineKind;

fn lockstep(kind: EngineKind, width: usize, cycles: u64, gen_seed: u64, exec_seed: u64) {
    let cfg = ProgramGenerator::new(GenParams::small(), gen_seed).generate();
    let image = CodeImage::build(&cfg, &layout::natural(&cfg));
    let mut pc_event = ProcessorConfig::table2(width);
    pc_event.legacy_scan = false;
    let mut pc_scan = pc_event;
    pc_scan.legacy_scan = true;
    let mut event =
        Processor::new(pc_event, kind.build(width, image.entry()), &cfg, &image, exec_seed);
    let mut scan =
        Processor::new(pc_scan, kind.build(width, image.entry()), &cfg, &image, exec_seed);
    for c in 0..cycles {
        event.cycle();
        scan.cycle();
        assert_eq!(
            event.stats(),
            scan.stats(),
            "{kind}: back-ends diverged at cycle {c}"
        );
    }
    assert!(event.committed() > 0, "{kind}: lockstep window committed nothing");
}

#[test]
fn every_engine_retires_identically_under_both_backends() {
    for kind in EngineKind::ALL {
        lockstep(kind, 4, 20_000, 42, 7);
    }
}

#[test]
fn lockstep_holds_at_eight_wide() {
    lockstep(EngineKind::Stream, 8, 15_000, 10, 3);
    lockstep(EngineKind::Ev8, 8, 15_000, 10, 3);
}

#[test]
fn large_rob_runs_are_bit_identical() {
    // The flight depths where the scan is quadratic: the event-driven
    // scheduler must still match it exactly.
    let cfg = ProgramGenerator::new(GenParams::small(), 5).generate();
    let image = CodeImage::build(&cfg, &layout::natural(&cfg));
    for rob in [512, 1024] {
        let mut pc = ProcessorConfig::table2(8);
        pc.rob_entries = rob;
        let event = simulate(&cfg, &image, EngineKind::Stream, pc, 9, 5_000, 40_000);
        pc.legacy_scan = true;
        let scan = simulate(&cfg, &image, EngineKind::Stream, pc, 9, 5_000, 40_000);
        assert_eq!(event, scan, "rob_entries = {rob}");
    }
}

#[test]
fn squash_storms_stay_identical() {
    // A branchy program on the engine with the weakest predictor coverage
    // maximizes misprediction squashes; the wheel must never leave a
    // stale token that changes issue behaviour.
    let mut p = GenParams::small();
    p.n_funcs = 12;
    let cfg = ProgramGenerator::new(p, 77).generate();
    let image = CodeImage::build(&cfg, &layout::natural(&cfg));
    let pc = ProcessorConfig::table2(8);
    let event = simulate(&cfg, &image, EngineKind::Ev8, pc, 13, 2_000, 60_000);
    let mut pc_scan = pc;
    pc_scan.legacy_scan = true;
    let scan = simulate(&cfg, &image, EngineKind::Ev8, pc_scan, 13, 2_000, 60_000);
    assert_eq!(event, scan);
    assert!(event.mispredictions > 100, "window must actually squash");
}
