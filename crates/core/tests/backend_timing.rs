//! Timing-model unit tests for the processor back-end: these pin the
//! cycle-level behaviours the front-end comparison depends on (mispredict
//! penalty ∝ pipe depth, D-cache-bound loads, dependence-limited ILP).

use sfetch_cfg::{layout, CfgBuilder, CodeImage, CondBehavior, TripCount};
use sfetch_core::{simulate, ProcessorConfig};
use sfetch_fetch::EngineKind;
use sfetch_isa::{Addr, DepDistance, InstClass, MemPattern, StaticInst};

/// An infinite loop whose body is `body` instructions.
fn loop_cfg(body: Vec<StaticInst>) -> sfetch_cfg::Cfg {
    let mut b = CfgBuilder::new();
    let f = b.add_func("main");
    let blk = b.add_block_with(f, body);
    let exit = b.add_block(f, 1);
    b.set_cond(blk, blk, exit, CondBehavior::Loop { trip: TripCount::Fixed(1 << 30) });
    b.set_return(exit);
    b.finish().expect("valid")
}

fn run(cfg: &sfetch_cfg::Cfg, width: usize, insts: u64) -> sfetch_core::SimStats {
    let image = CodeImage::build(cfg, &layout::natural(cfg));
    simulate(cfg, &image, EngineKind::Stream, ProcessorConfig::table2(width), 1, insts / 4, insts)
}

#[test]
fn independent_alu_loop_saturates_the_width() {
    // 15 independent single-cycle ALU ops + a perfectly predictable latch:
    // an 8-wide machine should approach IPC 8 (minus the taken-branch
    // cycle boundary effects).
    let body = vec![StaticInst::simple(InstClass::IntAlu); 15];
    let s = run(&loop_cfg(body), 8, 200_000);
    assert!(s.ipc() > 6.0, "independent ALU loop should near-saturate: {:.2}", s.ipc());
    assert!(s.mispred_rate() < 0.01, "latch must be predictable");
}

#[test]
fn loop_carried_chain_limits_ipc() {
    // One body instruction whose producer is itself in the previous
    // iteration (distance 2 skips the latch): a loop-carried serial chain.
    // Each iteration is 2 instructions gated by a 1-cycle link, so IPC
    // cannot exceed ~2 regardless of the 8-wide machine.
    let inst = StaticInst::with_deps(InstClass::IntAlu, DepDistance::new(2), DepDistance::NONE);
    let s = run(&loop_cfg(vec![inst]), 8, 100_000);
    assert!(s.ipc() < 2.3, "loop-carried chain must serialize: {:.2}", s.ipc());
    assert!(s.ipc() > 1.2, "but the latch still overlaps: {:.2}", s.ipc());
}

#[test]
fn independent_iterations_overlap_in_the_window() {
    // The same body with the dependence *inside* the iteration only: the
    // chain breaks at the (dependence-free) latch, iterations overlap in
    // the ROB, and the machine extracts far more ILP.
    let inst = StaticInst::with_deps(InstClass::IntAlu, DepDistance::new(1), DepDistance::NONE);
    let serial = run(&loop_cfg(vec![StaticInst::with_deps(
        InstClass::IntAlu,
        DepDistance::new(2),
        DepDistance::NONE,
    )]), 8, 60_000);
    let overlapped = run(&loop_cfg(vec![inst; 15]), 8, 60_000);
    assert!(
        overlapped.ipc() > serial.ipc() * 2.0,
        "iteration-level parallelism must show: {:.2} vs {:.2}",
        overlapped.ipc(),
        serial.ipc()
    );
}

#[test]
fn multiply_chain_is_slower_than_alu_chain() {
    // Loop-carried chains again (distance 2), now comparing 1-cycle ALU
    // links against 3-cycle multiply links.
    let alu = StaticInst::with_deps(InstClass::IntAlu, DepDistance::new(2), DepDistance::NONE);
    let mul = StaticInst::with_deps(InstClass::IntMul, DepDistance::new(2), DepDistance::NONE);
    let fast = run(&loop_cfg(vec![alu]), 4, 60_000);
    let slow = run(&loop_cfg(vec![mul]), 4, 60_000);
    assert!(
        slow.ipc() < fast.ipc() * 0.6,
        "3-cycle multiply links must show: mul {:.2} vs alu {:.2}",
        slow.ipc(),
        fast.ipc()
    );
}

#[test]
fn cache_missing_loads_crater_ipc() {
    // A pointer-chase: each load depends on its previous-iteration self
    // (distance 2 skips the latch). Hot (one line) vs cold (striding 8MB).
    let hot = StaticInst::memory(
        InstClass::Load,
        MemPattern::new(Addr::new(0x1000_0000), 0, 1),
        DepDistance::new(2),
    );
    let cold = StaticInst::memory(
        InstClass::Load,
        MemPattern::new(Addr::new(0x1000_0000), 4096, 2048),
        DepDistance::new(2),
    );
    let fast = run(&loop_cfg(vec![hot]), 4, 40_000);
    let slow = run(&loop_cfg(vec![cold]), 4, 20_000);
    assert!(slow.l1d.miss_rate() > 0.9, "cold loads must miss: {}", slow.l1d.miss_rate());
    assert!(fast.l1d.miss_rate() < 0.1, "hot loads must hit: {}", fast.l1d.miss_rate());
    assert!(
        slow.ipc() < fast.ipc() / 3.0,
        "a missing pointer-chase must crater: {:.3} vs {:.3}",
        slow.ipc(),
        fast.ipc()
    );
}

#[test]
fn misprediction_penalty_scales_with_pipe_depth() {
    // A 50/50 branch per iteration: cycles per iteration grow with the
    // front-end depth. Compare depth 8 vs depth 24.
    let mut b = CfgBuilder::new();
    let f = b.add_func("main");
    let head = b.add_block(f, 2);
    let t_arm = b.add_block(f, 2);
    let latch = b.add_block(f, 1);
    let exit = b.add_block(f, 1);
    b.set_cond(head, t_arm, latch, CondBehavior::Bernoulli { p_taken: 0.5 });
    b.set_fallthrough(t_arm, latch);
    b.set_cond(latch, head, exit, CondBehavior::Loop { trip: TripCount::Fixed(1 << 30) });
    b.set_return(exit);
    let cfg = b.finish().expect("valid");
    let image = CodeImage::build(&cfg, &layout::natural(&cfg));

    let at_depth = |depth: u32| {
        let mut pc = ProcessorConfig::table2(4);
        pc.depth = depth;
        simulate(&cfg, &image, EngineKind::Ev8, pc, 1, 20_000, 100_000)
    };
    let shallow = at_depth(8);
    let deep = at_depth(24);
    assert!(
        deep.cycles as f64 > shallow.cycles as f64 * 1.2,
        "deep pipe must pay more per misprediction: {} vs {} cycles",
        deep.cycles,
        shallow.cycles
    );
}

#[test]
fn narrow_pipe_equalizes_frontends() {
    // The paper's 2-wide observation, on a single hot loop: every engine
    // lands within a tight band when the back-end is the bottleneck.
    let body = vec![StaticInst::with_deps(InstClass::IntAlu, DepDistance::new(2), DepDistance::NONE); 11];
    let cfg = loop_cfg(body);
    let image = CodeImage::build(&cfg, &layout::natural(&cfg));
    let ipcs: Vec<f64> = EngineKind::ALL
        .iter()
        .map(|&k| {
            simulate(&cfg, &image, k, ProcessorConfig::table2(2), 1, 20_000, 100_000).ipc()
        })
        .collect();
    let max = ipcs.iter().cloned().fold(0.0, f64::max);
    let min = ipcs.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!((max - min) / max < 0.1, "2-wide spread too large: {ipcs:?}");
}
