//! The cycle-level processor: front-end verification, out-of-order
//! back-end, misprediction recovery.

use std::collections::VecDeque;

use sfetch_cfg::{Cfg, CodeImage};
use sfetch_fetch::{
    Checkpoint, CommittedControl, CommittedInst, FetchEngine, FetchEngineStats, FetchedInst,
    ResolvedBranch, StallCause,
};
use sfetch_isa::{Addr, BranchKind, InstClass};
use sfetch_mem::{MemoryConfig, MemoryHierarchy};
use sfetch_trace::{DynInst, Executor, OracleSource};

use crate::config::ProcessorConfig;
use crate::metrics::SimStats;
use crate::obs::{NullObserver, Observer};
use crate::scheduler::{EventScheduler, Seq};

/// Completion-time ring size (must exceed any ROB + dependence distance).
const COMPLETION_RING: usize = 4096;

/// Completion-wheel horizon in cycles. Must merely be ≥ 2: wakes farther
/// out than the horizon are clamped and re-parked when they fire early
/// (see [`EventScheduler::park`]), so the value only trades memory for
/// re-park frequency. 512 covers the deepest Table 2 event (a full
/// L1→L2→memory miss of 116 cycles, or the front-pipeline latency) with
/// no re-parks.
const WHEEL_HORIZON: usize = 512;

/// One reorder-buffer entry.
#[derive(Debug, Clone, Copy)]
struct RobEntry {
    seq: u64,
    fi: FetchedInst,
    /// Correct-path record; `None` marks a wrong-path instruction.
    oracle: Option<DynInst>,
    /// This entry anchors the pending execute-time recovery.
    anchor: bool,
    /// Prediction was wrong but was repaired at decode (misfetch): the
    /// committed record still reports `mispredicted` so predictors train
    /// their hysteresis/upgrade paths.
    misfetch: bool,
    ready_at: u64,
    issued: bool,
    done_at: u64,
    /// Some later entry is registered in this entry's waiter list
    /// (event-driven back-end only): issue must drain and re-park them.
    has_waiters: bool,
}

/// The in-flight recovery for the oldest divergence.
#[derive(Debug, Clone, Copy)]
struct Recovery {
    anchor_seq: u64,
    target: Addr,
    cp: Checkpoint,
    resolved: ResolvedBranch,
    resolve_at: Option<u64>,
}

/// The simulated processor: one fetch engine + memory hierarchy + ROB
/// back-end, verified against the architectural executor.
///
/// Generic over an [`Observer`] receiving per-instruction pipeline
/// events; the default [`NullObserver`] compiles every hook away (see
/// [`crate::obs`]), keeping the untraced simulator bit-identical and
/// overhead-free.
pub struct Processor<'a, O: Observer = NullObserver> {
    config: ProcessorConfig,
    obs: O,
    engine: Box<dyn FetchEngine>,
    mem: MemoryHierarchy,
    image: &'a CodeImage,
    oracle: OracleSource<'a>,
    pending_oracle: Option<DynInst>,
    rob: VecDeque<RobEntry>,
    next_seq: u64,
    on_correct: bool,
    recovery: Option<Recovery>,
    fetch_hold_until: u64,
    redirect_hold_until: u64,
    now: u64,
    last_progress: u64,
    last_cp: Checkpoint,
    completion: Vec<u64>,
    sched: EventScheduler,
    /// Position keys for O(1) seq → ROB-index resolution: `pos_key[seq %
    /// ring] - total_pops` is the entry's current index from the ROB
    /// front (commits shift every index by one; squashes pop from the
    /// back and shift nothing). A token is live iff the index is in
    /// bounds and the entry there carries the same seq.
    pos_key: Vec<u64>,
    /// Lifetime count of ROB front pops (commits).
    total_pops: u64,
    /// Scratch for draining wheel slots and waiter lists (capacity reused
    /// across cycles).
    wake_buf: Vec<Seq>,
    fetch_buf: Vec<FetchedInst>,
    /// This cycle's commit group, handed to the engine in one
    /// `commit_block` call (one virtual dispatch per cycle, not per
    /// instruction).
    commit_buf: Vec<CommittedInst>,
    stats: SimStats,
    engine_baseline: FetchEngineStats,
}

/// What the fetch stage did this cycle — the front-end leg of the
/// top-down cycle classifier ([`crate::metrics::CycleBuckets`]).
enum FetchOutcome {
    /// Fetch held by a front-pipeline bubble.
    Held {
        /// `true` for a post-squash redirect penalty, `false` for a
        /// decode-misfetch bubble.
        redirect: bool,
    },
    /// No ROB space for a full fetch group.
    RobFull,
    /// The engine ran.
    Ran {
        /// Correct-path instructions accepted by verification.
        accepted: u64,
        /// A decode redirect (misfetch) fired this cycle.
        redirected: bool,
    },
}

/// The obstacle currently blocking an unissued ROB entry from issue.
enum Block {
    /// All obstacles cleared: eligible now.
    None,
    /// Blocked on a producer that has not issued (completion unknown).
    OnProducer(Seq),
    /// Blocked until a known future cycle (producer completion or
    /// front-pipeline arrival).
    AtCycle(u64),
}

impl<'a> Processor<'a> {
    /// Creates a processor with the Table 2 memory hierarchy for the
    /// configured width and the given fetch engine.
    pub fn new(
        config: ProcessorConfig,
        engine: Box<dyn FetchEngine>,
        cfg: &'a Cfg,
        image: &'a CodeImage,
        seed: u64,
    ) -> Self {
        Self::with_memory(config, MemoryConfig::table2(config.width), engine, cfg, image, seed)
    }

    /// Creates a processor with an explicit memory configuration (used by
    /// the line-size ablation).
    pub fn with_memory(
        config: ProcessorConfig,
        memcfg: MemoryConfig,
        engine: Box<dyn FetchEngine>,
        cfg: &'a Cfg,
        image: &'a CodeImage,
        seed: u64,
    ) -> Self {
        // The oracle walks the image's interned control table; `cfg` is only
        // needed to validate that the image was actually built from it.
        assert_eq!(
            cfg.num_blocks(),
            image.control().num_blocks(),
            "image was not built from this cfg"
        );
        let mut mem = MemoryHierarchy::new(memcfg);
        if config.prefetch.pipelined() {
            mem.enable_inst_pipeline(config.prefetch.mshrs);
        }
        Self::with_state(config, engine, image, Executor::from_image(image, seed), mem)
    }

    /// Creates a processor around pre-built architectural and memory
    /// state: an [`Executor`] positioned anywhere in its trace (e.g.
    /// resumed from an [`sfetch_trace::ArchCheckpoint`]) and a
    /// [`MemoryHierarchy`] that may already be warm. This is the sampled
    /// simulator's entry point: each sample window functionally warms
    /// caches/predictors along the fast-forwarded path, then hands the
    /// state here for the detailed window.
    ///
    /// The caller is responsible for the engine's fetch cursor pointing
    /// at the executor's current pc (engines start at their construction
    /// `entry`; redirect them when resuming mid-trace) and for the memory
    /// hierarchy's inst pipeline matching `config.prefetch` (fresh
    /// hierarchies are upgraded here as a convenience).
    ///
    /// # Panics
    ///
    /// Panics if the engine width disagrees with the configuration or the
    /// ROB does not fit the completion ring.
    pub fn with_state(
        config: ProcessorConfig,
        engine: Box<dyn FetchEngine>,
        image: &'a CodeImage,
        oracle: Executor<'a>,
        mem: MemoryHierarchy,
    ) -> Self {
        Processor::with_state_observed(config, engine, image, oracle, mem, NullObserver)
    }

    /// [`Processor::with_state`] over any [`OracleSource`] — the batched
    /// sampler's entry point, where N cores share one recorded
    /// functional walk instead of each owning a live [`Executor`].
    pub fn with_state_source(
        config: ProcessorConfig,
        engine: Box<dyn FetchEngine>,
        image: &'a CodeImage,
        oracle: OracleSource<'a>,
        mem: MemoryHierarchy,
    ) -> Self {
        Processor::with_source_observed(config, engine, image, oracle, mem, NullObserver)
    }
}

impl<'a, O: Observer> Processor<'a, O> {
    /// [`Processor::with_state`] with an explicit pipeline-event
    /// [`Observer`] attached. This is the only observed constructor:
    /// tracing runs are short windows resumed from the same pre-built
    /// state the sampled simulator uses.
    pub fn with_state_observed(
        config: ProcessorConfig,
        engine: Box<dyn FetchEngine>,
        image: &'a CodeImage,
        oracle: Executor<'a>,
        mem: MemoryHierarchy,
        obs: O,
    ) -> Self {
        Self::with_source_observed(config, engine, image, OracleSource::Live(oracle), mem, obs)
    }

    /// [`Processor::with_state_observed`] over any [`OracleSource`].
    pub fn with_source_observed(
        config: ProcessorConfig,
        engine: Box<dyn FetchEngine>,
        image: &'a CodeImage,
        oracle: OracleSource<'a>,
        mut mem: MemoryHierarchy,
        obs: O,
    ) -> Self {
        assert_eq!(engine.width(), config.width, "engine width must match processor width");
        config.prefetch.validate();
        // The completion ring is indexed by sequence number; it must not
        // alias across the largest seq span simultaneously in flight
        // (ROB + squash gaps + the 255-max dependence distance).
        assert!(
            config.rob_entries * 2 + 512 <= COMPLETION_RING,
            "rob_entries {} too large for the completion ring",
            config.rob_entries
        );
        if config.prefetch.pipelined() && !mem.inst_pipeline_enabled() {
            mem.enable_inst_pipeline(config.prefetch.mshrs);
        }
        Processor {
            config,
            obs,
            engine,
            mem,
            image,
            oracle,
            pending_oracle: None,
            rob: VecDeque::with_capacity(config.rob_entries),
            next_seq: 0,
            on_correct: true,
            recovery: None,
            fetch_hold_until: 0,
            redirect_hold_until: 0,
            now: 0,
            last_progress: 0,
            last_cp: Checkpoint::default(),
            completion: vec![u64::MAX; COMPLETION_RING],
            sched: EventScheduler::new(WHEEL_HORIZON, COMPLETION_RING),
            pos_key: vec![u64::MAX; COMPLETION_RING],
            total_pops: 0,
            wake_buf: Vec::with_capacity(32),
            fetch_buf: Vec::with_capacity(16),
            commit_buf: Vec::with_capacity(config.width),
            stats: SimStats::default(),
            engine_baseline: FetchEngineStats::default(),
        }
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Committed instructions since the last stats reset.
    pub fn committed(&self) -> u64 {
        self.stats.committed
    }

    /// Runs until `n` more instructions commit (relative to the current
    /// stats window).
    pub fn run(&mut self, n: u64) {
        let target = self.stats.committed + n;
        while self.stats.committed < target {
            self.cycle();
        }
    }

    /// Resets the statistics window (used after warmup). Predictor and
    /// cache *state* is retained; only counters restart.
    pub fn reset_stats(&mut self) {
        self.stats = SimStats::default();
        self.mem.reset_stats();
        self.engine_baseline = self.engine.stats();
    }

    /// Final statistics for the current window.
    pub fn stats(&self) -> SimStats {
        let mut s = self.stats;
        s.engine = diff_engine(self.engine.stats(), self.engine_baseline);
        s.l1i = self.mem.l1i_stats();
        s.l1d = self.mem.l1d_stats();
        s.l2 = self.mem.l2_stats();
        s.prefetch = self.mem.prefetch_stats();
        s.storage_bits = self.engine.storage_bits();
        s
    }

    /// Direct access to the fetch engine (for ablation reporting).
    pub fn engine(&self) -> &dyn FetchEngine {
        self.engine.as_ref()
    }

    /// Direct access to the attached observer.
    pub fn observer_mut(&mut self) -> &mut O {
        &mut self.obs
    }

    /// Consumes the processor, returning the observer (to flush a trace
    /// sink after the traced window).
    pub fn into_observer(self) -> O {
        self.obs
    }

    /// Advances the simulation by one clock cycle.
    pub fn cycle(&mut self) {
        self.commit_stage();
        if self.config.legacy_scan {
            self.execute_stage_scan();
        } else {
            self.execute_stage_event();
        }
        self.recovery_stage();
        let fetched = self.fetch_stage();
        let resynced = self.watchdog();
        self.account_cycle(fetched, resynced);
        self.now += 1;
        self.stats.cycles += 1;
    }

    /// Attributes the elapsing cycle to exactly one
    /// [`crate::metrics::CycleBuckets`] bucket (priority order documented
    /// there). Pure counting — never feeds back into timing — so the
    /// simulated behaviour is bit-identical with accounting compiled in.
    fn account_cycle(&mut self, fetched: FetchOutcome, resynced: bool) {
        let b = &mut self.stats.buckets;
        if !self.commit_buf.is_empty() {
            b.commit += 1;
            return;
        }
        if resynced {
            b.watchdog += 1;
            return;
        }
        match fetched {
            FetchOutcome::Held { redirect: true } => b.hold_redirect += 1,
            FetchOutcome::Held { redirect: false } => b.hold_decode += 1,
            FetchOutcome::RobFull => b.rob_full += 1,
            FetchOutcome::Ran { accepted, redirected } => {
                if accepted > 0 {
                    b.backend += 1;
                } else if redirected {
                    b.hold_decode += 1;
                } else if self.recovery.is_some() || !self.on_correct {
                    b.squash += 1;
                } else {
                    match self.engine.stall_probe() {
                        StallCause::Mem => self.stats.buckets.fetch_mem += 1,
                        StallCause::L2 => self.stats.buckets.fetch_l2 += 1,
                        StallCause::Mshr => self.stats.buckets.fetch_mshr += 1,
                        StallCause::Redirect => self.stats.buckets.squash += 1,
                        StallCause::None => self.stats.buckets.ftq_empty += 1,
                    }
                }
            }
        }
    }

    // --- pipeline stages -------------------------------------------------

    fn commit_stage(&mut self) {
        // Pops and statistics run per instruction; engine training is
        // batched into one `commit_block` call per cycle. The pops never
        // consult the engine, so the batched call sees the identical
        // program-order sequence the per-instruction calls did.
        self.commit_buf.clear();
        for _ in 0..self.config.width {
            let Some(head) = self.rob.front() else { break };
            if !(head.issued && head.done_at <= self.now) {
                break;
            }
            if head.oracle.is_none() {
                // Wrong-path instructions never commit; they are squashed by
                // the recovery stage once the anchoring branch resolves
                // (which, if the anchor just committed, happens this cycle).
                break;
            }
            let e = self.rob.pop_front().expect("head exists");
            self.total_pops += 1;
            if O::ENABLED {
                self.obs.committed(self.now, e.seq);
            }
            let d = e.oracle.expect("checked above");
            let control = d.control.map(|c| CommittedControl {
                kind: c.kind,
                taken: c.taken,
                target: c.target,
                next_pc: c.next_pc,
                is_fixup: c.is_fixup,
            });
            self.commit_buf.push(CommittedInst {
                pc: d.pc,
                control,
                mispredicted: e.anchor || e.misfetch,
            });
            self.stats.committed += 1;
            if let Some(c) = d.control {
                match c.kind {
                    BranchKind::Cond => {
                        self.stats.branches += 1;
                        self.stats.cond_branches += 1;
                        self.stats.cond_taken += u64::from(c.taken);
                    }
                    BranchKind::Return | BranchKind::IndirectJump | BranchKind::IndirectCall => {
                        self.stats.branches += 1;
                    }
                    BranchKind::Jump | BranchKind::Call => {}
                }
            }
            self.last_progress = self.now;
        }
        if !self.commit_buf.is_empty() {
            self.engine.commit_block(&self.commit_buf);
        }
    }

    /// The legacy O(rob)-per-cycle issue stage: walk every in-flight entry
    /// oldest-first and issue the first `width` eligible ones. Kept behind
    /// [`ProcessorConfig::legacy_scan`] for differential testing against
    /// the event-driven scheduler.
    fn execute_stage_scan(&mut self) {
        let mut issued = 0;
        let width = self.config.width;
        let now = self.now;
        for i in 0..self.rob.len() {
            if issued == width {
                break;
            }
            {
                let e = &self.rob[i];
                if e.issued || e.ready_at > now {
                    continue;
                }
                if !self.deps_done(e) {
                    continue;
                }
            }
            self.issue_entry(i);
            issued += 1;
        }
    }

    /// The event-driven issue stage: wake front-pipeline arrivals and this
    /// cycle's completion-wheel slot, re-evaluate each woken entry's
    /// obstacles, then issue up to `width` entries from the ready queue
    /// oldest-first — the same set in the same order as the scan, at
    /// O(width + events) per cycle.
    fn execute_stage_event(&mut self) {
        let now = self.now;
        let width = self.config.width;
        // Dispatches arrive in FIFO wake-cycle order: pop while due.
        // Squashed tokens (no live ROB slot) are discarded on the way.
        while let Some(seq) = self.sched.peek_arrival() {
            match self.rob_index(seq) {
                None => {
                    self.sched.pop_arrival();
                }
                Some(i) => {
                    if self.rob[i].ready_at > now {
                        break;
                    }
                    self.sched.pop_arrival();
                    self.classify(seq, i);
                }
            }
        }
        // Entries parked until a known completion cycle.
        let mut due = std::mem::take(&mut self.wake_buf);
        self.sched.drain_due(now, &mut due);
        for &seq in &due {
            if let Some(i) = self.rob_index(seq) {
                self.classify(seq, i);
            }
        }
        due.clear();
        let mut issued = 0;
        while issued < width {
            let Some(seq) = self.sched.pop_ready() else { break };
            // Validate the token: squashed entries' tokens no longer
            // resolve to a live ROB slot and are dropped here.
            let Some(i) = self.rob_index(seq) else { continue };
            if self.rob[i].issued {
                continue;
            }
            let done_at = self.issue_entry(i);
            if self.rob[i].has_waiters {
                // The producer's completion cycle is now known: park
                // everyone who was waiting on it.
                self.rob[i].has_waiters = false;
                self.sched.take_waiters(seq, &mut due);
                for &w in &due {
                    self.sched.park(w, done_at, now);
                }
                due.clear();
            }
            issued += 1;
        }
        self.wake_buf = due;
    }

    /// Re-evaluates a woken live entry's obstacles: enter the ready
    /// queue, or re-park on the next obstacle (producer issue / known
    /// future cycle).
    fn classify(&mut self, seq: Seq, i: usize) {
        let e = &self.rob[i];
        if e.issued {
            return;
        }
        if e.ready_at > self.now {
            // A beyond-horizon park fired early; re-park at arrival.
            self.sched.park(seq, e.ready_at, self.now);
            return;
        }
        match self.first_block(e) {
            Block::None => self.sched.push_ready(seq),
            Block::OnProducer(p) => {
                // Flag the producer so its issue drains the waiter list;
                // if it cannot be resolved (it should always be live when
                // its completion is still unknown), retry next cycle
                // rather than risk a lost wake.
                match self.rob_index(p) {
                    Some(pi) => {
                        self.rob[pi].has_waiters = true;
                        self.sched.wait_on(seq, p);
                    }
                    None => self.sched.park(seq, self.now + 1, self.now),
                }
            }
            Block::AtCycle(t) => self.sched.park(seq, t, self.now),
        }
    }

    /// Locates a sequence number in the ROB in O(1) via the position-key
    /// ring; `None` means the entry committed or was squashed (sequence
    /// numbers are never reused, so a stale token can only miss).
    fn rob_index(&self, seq: Seq) -> Option<usize> {
        let key = self.pos_key[(seq % COMPLETION_RING as u64) as usize];
        let idx = key.wrapping_sub(self.total_pops) as usize;
        if idx < self.rob.len() && self.rob[idx].seq == seq {
            Some(idx)
        } else {
            None
        }
    }

    /// The first obstacle blocking `e` from issue, mirroring [`Self::deps_done`]
    /// exactly: a dependence on an unissued producer, a dependence on a
    /// known future completion, or nothing.
    fn first_block(&self, e: &RobEntry) -> Block {
        for dist in [e.fi.inst.dep1().get(), e.fi.inst.dep2().get()] {
            if dist == 0 {
                continue;
            }
            let dist = u64::from(dist);
            if e.seq < dist {
                continue;
            }
            let producer = e.seq - dist;
            let done = self.completion[(producer % COMPLETION_RING as u64) as usize];
            if done == u64::MAX {
                return Block::OnProducer(producer);
            }
            if done > self.now {
                return Block::AtCycle(done);
            }
        }
        Block::None
    }

    /// Issues the ROB entry at index `i`: computes its execution latency
    /// (loads pay the D-cache access; stores access the cache but retire
    /// through a store buffer), stamps the completion ring, and arms the
    /// pending recovery if this is its anchor. Returns the completion
    /// cycle. Shared verbatim by both issue stages so their memory-system
    /// side effects are identical.
    fn issue_entry(&mut self, i: usize) -> u64 {
        let (class, mem_addr) = {
            let e = &self.rob[i];
            (e.fi.inst.class(), e.oracle.and_then(|d| d.mem_addr))
        };
        let now = self.now;
        let mut lat = u64::from(class.base_latency());
        match class {
            InstClass::Load => {
                if let Some(addr) = mem_addr {
                    lat = u64::from(self.mem.data_access(addr, false));
                }
            }
            InstClass::Store => {
                if let Some(addr) = mem_addr {
                    // Stores retire through a store buffer: access the
                    // cache (for fills/stats) but complete in a cycle.
                    let _ = self.mem.data_access(addr, true);
                }
            }
            _ => {}
        }
        let entry = &mut self.rob[i];
        entry.issued = true;
        entry.done_at = now + lat;
        let (seq, done_at) = (entry.seq, entry.done_at);
        self.completion[(seq % COMPLETION_RING as u64) as usize] = done_at;
        if entry.anchor {
            if let Some(r) = self.recovery.as_mut() {
                if r.anchor_seq == seq {
                    r.resolve_at = Some(done_at);
                }
            }
        }
        if O::ENABLED {
            self.obs.issued(now, seq, done_at);
        }
        done_at
    }

    /// Whether all of `e`'s producers have completed. Defined in terms of
    /// [`Self::first_block`] so the legacy scan and the event scheduler
    /// share one dependence-check implementation — their bit-identical
    /// guarantee is structural, not by convention (an unissued producer's
    /// `u64::MAX` completion is "not done" either way).
    fn deps_done(&self, e: &RobEntry) -> bool {
        matches!(self.first_block(e), Block::None)
    }

    fn recovery_stage(&mut self) {
        let Some(r) = self.recovery else { return };
        let Some(at) = r.resolve_at else { return };
        if at > self.now {
            return;
        }
        // Squash everything younger than the anchor (all wrong-path).
        while let Some(back) = self.rob.back() {
            if back.seq <= r.anchor_seq {
                break;
            }
            let seq = back.seq;
            self.completion[(seq % COMPLETION_RING as u64) as usize] = self.now;
            self.rob.pop_back();
            if O::ENABLED {
                self.obs.squashed(self.now, seq);
            }
        }
        self.engine.redirect(self.now, r.target, &r.cp, &r.resolved);
        // Front-pipeline recovery cost: hold fetch for the engine's
        // post-squash redirect penalty (history/RAS repair, overriding-
        // cascade re-steer, fill-unit flush). Zero under the legacy model
        // keeps `redirect_hold_until` at 0 — bit-identical behavior.
        let penalty = self.config.front.redirect_penalty;
        if penalty > 0 {
            self.redirect_hold_until = self.now + u64::from(penalty);
            self.stats.redirect_penalties += 1;
        }
        self.stats.mispredictions += 1;
        match r.resolved.kind {
            Some(BranchKind::Cond) => self.stats.mispred_cond += 1,
            Some(BranchKind::Return) => self.stats.mispred_return += 1,
            Some(BranchKind::IndirectJump) | Some(BranchKind::IndirectCall) => {
                self.stats.mispred_indirect += 1
            }
            _ => self.stats.mispred_other += 1,
        }
        self.on_correct = true;
        self.recovery = None;
    }

    fn fetch_stage(&mut self) -> FetchOutcome {
        // Front-pipeline holds, with the stall decomposition: every held
        // cycle is attributed to exactly one cause (redirect penalties
        // take precedence when both overlap), so `hold_decode_cycles +
        // hold_redirect_cycles == fetch_hold_cycles` by construction.
        let held_redirect = self.now < self.redirect_hold_until;
        if held_redirect || self.now < self.fetch_hold_until {
            self.stats.fetch_hold_cycles += 1;
            if held_redirect {
                self.stats.hold_redirect_cycles += 1;
            } else {
                self.stats.hold_decode_cycles += 1;
            }
            return FetchOutcome::Held { redirect: held_redirect };
        }
        if self.rob.len() + self.config.width > self.config.rob_entries {
            return FetchOutcome::RobFull; // no ROB space for a full fetch group
        }
        let mut buf = std::mem::take(&mut self.fetch_buf);
        buf.clear();
        self.engine.cycle(self.now, self.image, &mut self.mem, &mut buf);
        let mut accepted = 0u64;
        let mut redirected = false;
        for (i, fi) in buf.iter().enumerate() {
            let fi = *fi;
            if !self.on_correct {
                self.push_rob(fi, None, false, false);
                continue;
            }
            let d = self.peek_oracle();
            if fi.pc != d.pc {
                // The front-end fetched the wrong instruction without a
                // mispredicted branch carrying the error (e.g. a stale
                // stream length over a non-branch): the decoder's PC check
                // catches it — resync with a decode bubble.
                self.stats.misfetches += 1;
                let target = d.pc;
                let resolved =
                    ResolvedBranch { pc: fi.pc, kind: None, taken: false, target };
                self.decode_redirect(fi.cp, target, resolved);
                redirected = true;
                break; // drop the rest of the bundle
            }
            let d = self.take_oracle();
            accepted += 1;
            self.last_cp = fi.cp;
            match (fi.pred, d.control) {
                (Some(p), Some(c)) => {
                    let dir_ok = p.taken == c.taken;
                    let target_ok = !c.taken || !p.taken || p.target == c.target;
                    if dir_ok && target_ok {
                        self.push_rob(fi, Some(d), false, false);
                    } else if !p.taken
                        && c.taken
                        && matches!(c.kind, BranchKind::Jump | BranchKind::Call)
                    {
                        // An unidentified *direct, unconditional* branch:
                        // the decoder sees the target and redirects with a
                        // small bubble (misfetch), no execute-time penalty.
                        self.stats.misfetches += 1;
                        self.push_rob(fi, Some(d), false, true);
                        let resolved = ResolvedBranch {
                            pc: d.pc,
                            kind: Some(c.kind),
                            taken: true,
                            target: c.target,
                        };
                        self.decode_redirect(fi.cp, c.next_pc, resolved);
                        redirected = true;
                        let _ = i;
                        break;
                    } else {
                        // Full misprediction: recover when the branch
                        // executes.
                        let resolved = ResolvedBranch {
                            pc: d.pc,
                            kind: Some(c.kind),
                            taken: c.taken,
                            target: c.target,
                        };
                        self.recovery = Some(Recovery {
                            anchor_seq: self.next_seq,
                            target: c.next_pc,
                            cp: fi.cp,
                            resolved,
                            resolve_at: None,
                        });
                        self.on_correct = false;
                        self.push_rob(fi, Some(d), true, false);
                    }
                }
                (None, None) => self.push_rob(fi, Some(d), false, false),
                // Engines attach predictions to every branch they decode and
                // the oracle walks the same image, so these cases indicate a
                // simulator bug.
                (Some(_), None) | (None, Some(_)) => {
                    unreachable!("prediction/control mismatch at {}", fi.pc)
                }
            }
        }
        self.fetch_buf = buf;
        if accepted > 0 {
            self.stats.fetched_correct += accepted;
            self.stats.fetch_active_cycles += 1;
            self.last_progress = self.now;
        }
        FetchOutcome::Ran { accepted, redirected }
    }

    fn decode_redirect(&mut self, cp: Checkpoint, target: Addr, resolved: ResolvedBranch) {
        self.engine.redirect(self.now, target, &cp, &resolved);
        self.fetch_hold_until = self.now + u64::from(self.config.front.decode_redirect_lat);
    }

    fn push_rob(&mut self, fi: FetchedInst, oracle: Option<DynInst>, anchor: bool, misfetch: bool) {
        let seq = self.next_seq;
        self.next_seq += 1;
        if O::ENABLED {
            self.obs.fetched(self.now, seq, fi.pc, oracle.is_none());
        }
        self.completion[(seq % COMPLETION_RING as u64) as usize] = u64::MAX;
        self.pos_key[(seq % COMPLETION_RING as u64) as usize] =
            self.rob.len() as u64 + self.total_pops;
        let ready_at = self.now + u64::from(self.config.front_latency());
        self.rob.push_back(RobEntry {
            seq,
            fi,
            oracle,
            anchor,
            misfetch,
            ready_at,
            issued: false,
            done_at: u64::MAX,
            has_waiters: false,
        });
        if !self.config.legacy_scan {
            // Dispatch event: the entry sleeps until it clears the front
            // pipeline, then re-evaluates its dependence obstacles.
            self.sched.push_arrival(seq);
        }
    }

    fn peek_oracle(&mut self) -> DynInst {
        if self.pending_oracle.is_none() {
            self.pending_oracle = self.oracle.next_inst();
        }
        self.pending_oracle.expect("executor is infinite")
    }

    fn take_oracle(&mut self) -> DynInst {
        let d = self.peek_oracle();
        self.pending_oracle = None;
        d
    }

    /// Safety net: if the front-end wedges on a wrong path without an
    /// anchored recovery (possible only through pathological predictor
    /// state), resynchronize it to the oracle. Counted; expected ~never.
    /// Returns whether it fired (for the cycle classifier).
    fn watchdog(&mut self) -> bool {
        if self.now - self.last_progress <= self.config.watchdog_cycles {
            return false;
        }
        self.stats.watchdog_resyncs += 1;
        // Squash all wrong-path work and restart cleanly from the oracle.
        if let Some(r) = self.recovery {
            while let Some(back) = self.rob.back() {
                if back.seq <= r.anchor_seq {
                    break;
                }
                let seq = back.seq;
                self.completion[(seq % COMPLETION_RING as u64) as usize] = self.now;
                self.rob.pop_back();
                if O::ENABLED {
                    self.obs.squashed(self.now, seq);
                }
            }
            self.engine.redirect(self.now, r.target, &r.cp, &r.resolved);
            self.on_correct = true;
            self.recovery = None;
        } else {
            let d = self.peek_oracle();
            let resolved = ResolvedBranch { pc: d.pc, kind: None, taken: false, target: d.pc };
            let cp = self.last_cp;
            self.engine.redirect(self.now, d.pc, &cp, &resolved);
        }
        self.last_progress = self.now;
        true
    }
}

fn diff_engine(cur: FetchEngineStats, base: FetchEngineStats) -> FetchEngineStats {
    FetchEngineStats {
        predictor_lookups: cur.predictor_lookups - base.predictor_lookups,
        predictor_hits: cur.predictor_hits - base.predictor_hits,
        units: cur.units - base.units,
        unit_insts: cur.unit_insts - base.unit_insts,
        tc_hits: cur.tc_hits - base.tc_hits,
        tc_misses: cur.tc_misses - base.tc_misses,
        icache_stall_cycles: cur.icache_stall_cycles - base.icache_stall_cycles,
        stall_l2_cycles: cur.stall_l2_cycles - base.stall_l2_cycles,
        stall_mem_cycles: cur.stall_mem_cycles - base.stall_mem_cycles,
        stall_mshr_cycles: cur.stall_mshr_cycles - base.stall_mshr_cycles,
        shadow_installs: cur.shadow_installs - base.shadow_installs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfetch_cfg::gen::{GenParams, ProgramGenerator};
    use sfetch_cfg::layout;
    use sfetch_fetch::EngineKind;

    fn run_engine(kind: EngineKind, width: usize, insts: u64) -> SimStats {
        let cfg = ProgramGenerator::new(GenParams::small(), 42).generate();
        let image = CodeImage::build(&cfg, &layout::natural(&cfg));
        let pc = ProcessorConfig::table2(width);
        let engine = kind.build(width, image.entry());
        let mut p = Processor::new(pc, engine, &cfg, &image, 7);
        p.run(insts);
        p.stats()
    }

    #[test]
    fn all_engines_make_forward_progress() {
        for kind in EngineKind::ALL {
            let s = run_engine(kind, 4, 20_000);
            assert!(s.committed >= 20_000, "{kind}: committed {}", s.committed);
            assert!(s.ipc() > 0.1, "{kind}: ipc {}", s.ipc());
            assert!(s.ipc() <= 4.0, "{kind}: ipc exceeds width");
            assert_eq!(s.watchdog_resyncs, 0, "{kind}: watchdog fired");
        }
    }

    #[test]
    fn committed_path_matches_oracle_exactly() {
        // The committed instruction count and branch counts must equal the
        // executor's own statistics over the same window — commits are the
        // oracle sequence by construction; this guards the plumbing.
        let cfg = ProgramGenerator::new(GenParams::small(), 10).generate();
        let image = CodeImage::build(&cfg, &layout::natural(&cfg));
        let n = 30_000u64;
        let engine = EngineKind::Stream.build(4, image.entry());
        let mut p = Processor::new(ProcessorConfig::table2(4), engine, &cfg, &image, 3);
        p.run(n);
        let s = p.stats();

        let mut conds = 0u64;
        let mut taken = 0u64;
        for d in Executor::new(&cfg, &image, 3).take(n as usize) {
            if let Some(c) = d.control {
                if c.kind == BranchKind::Cond {
                    conds += 1;
                    taken += u64::from(c.taken);
                }
            }
        }
        assert_eq!(s.cond_branches, conds);
        assert_eq!(s.cond_taken, taken);
    }

    #[test]
    fn wider_pipes_do_not_reduce_ipc() {
        let s2 = run_engine(EngineKind::Stream, 2, 20_000);
        let s8 = run_engine(EngineKind::Stream, 8, 20_000);
        assert!(
            s8.ipc() >= s2.ipc() * 0.95,
            "8-wide ({:.2}) should not be slower than 2-wide ({:.2})",
            s8.ipc(),
            s2.ipc()
        );
    }

    #[test]
    fn fetch_ipc_bounded_by_width() {
        for kind in EngineKind::ALL {
            let s = run_engine(kind, 4, 20_000);
            assert!(s.fetch_ipc() <= 4.0 + 1e-9, "{kind}: fetch ipc {}", s.fetch_ipc());
            assert!(s.fetch_ipc() >= s.ipc() * 0.9, "{kind}: fetch ipc below ipc");
        }
    }

    #[test]
    fn mispredictions_are_bounded() {
        for kind in EngineKind::ALL {
            let s = run_engine(kind, 4, 20_000);
            let rate = s.mispred_rate();
            assert!(rate < 0.5, "{kind}: implausible mispred rate {rate}");
            assert!(s.mispredictions > 0, "{kind}: zero mispredictions is implausible");
        }
    }

    #[test]
    fn warmup_reset_clears_counters_but_keeps_state() {
        let cfg = ProgramGenerator::new(GenParams::small(), 42).generate();
        let image = CodeImage::build(&cfg, &layout::natural(&cfg));
        let engine = EngineKind::Stream.build(4, image.entry());
        let mut p = Processor::new(ProcessorConfig::table2(4), engine, &cfg, &image, 7);
        p.run(10_000);
        let warm = p.stats();
        p.reset_stats();
        assert_eq!(p.stats().committed, 0);
        p.run(10_000);
        let cold_rate = warm.mispred_rate();
        let warm_rate = p.stats().mispred_rate();
        assert!(
            warm_rate <= cold_rate * 1.5 + 0.01,
            "trained window ({warm_rate}) should not be much worse than cold ({cold_rate})"
        );
    }

    #[test]
    fn deterministic_simulation() {
        let a = run_engine(EngineKind::TraceCache, 4, 15_000);
        let b = run_engine(EngineKind::TraceCache, 4, 15_000);
        assert_eq!(a, b);
    }
}
