//! Per-instruction pipeline event observation.
//!
//! The [`Processor`](crate::Processor) is generic over an [`Observer`]
//! whose hooks fire on the pipeline events of every in-flight
//! instruction: fetch (ROB insertion), issue (with the known completion
//! cycle), commit, and squash. The default [`NullObserver`] sets
//! [`Observer::ENABLED`] to `false`; every hook call in the processor is
//! guarded by that associated constant, so the no-observer instantiation
//! monomorphizes the hooks away entirely — tracing-off runs are
//! bit-identical to the pre-observer simulator with no measurable
//! overhead (the `<2%` wall-clock contract is asserted by the perfstats
//! harness).
//!
//! Concrete sinks (the Konata pipeline-trace writer) live in the
//! dependency-free `sfetch-obs` crate; the adapter implementing this
//! trait over them lives with the harness (`sfetch-bench`), keeping the
//! core ↛ obs dependency direction clean.

use sfetch_isa::Addr;

/// Receiver for per-instruction pipeline events.
///
/// Sequence numbers are the processor's fetch-order sequence (monotone,
/// never reused; wrong-path instructions included). All hooks have empty
/// defaults so sinks implement only what they need.
pub trait Observer {
    /// Whether this observer's hooks should be invoked at all. Hook call
    /// sites are guarded by `if O::ENABLED`, so a `false` observer
    /// compiles to nothing.
    const ENABLED: bool;

    /// An instruction entered the pipeline (ROB insertion at fetch
    /// verification). `wrong_path` marks instructions fetched past an
    /// unresolved mispredicted branch — they will be squashed, never
    /// committed.
    fn fetched(&mut self, now: u64, seq: u64, pc: Addr, wrong_path: bool) {
        let _ = (now, seq, pc, wrong_path);
    }

    /// An instruction issued to execute; its completion cycle is known.
    fn issued(&mut self, now: u64, seq: u64, done_at: u64) {
        let _ = (now, seq, done_at);
    }

    /// An instruction retired.
    fn committed(&mut self, now: u64, seq: u64) {
        let _ = (now, seq);
    }

    /// An instruction was squashed by a misprediction recovery or a
    /// watchdog resynchronization.
    fn squashed(&mut self, now: u64, seq: u64) {
        let _ = (now, seq);
    }
}

/// The disabled observer: every hook compiles away.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl Observer for NullObserver {
    const ENABLED: bool = false;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enabled<O: Observer>(_o: &O) -> bool {
        O::ENABLED
    }

    #[test]
    fn null_observer_is_disabled() {
        assert!(!enabled(&NullObserver));
        // The default hooks are callable no-ops.
        let mut o = NullObserver;
        o.fetched(0, 0, Addr::new(0), false);
        o.issued(1, 0, 2);
        o.committed(2, 0);
        o.squashed(2, 0);
    }
}
