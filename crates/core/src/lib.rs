//! # sfetch-core
//!
//! The cycle-level superscalar processor simulator of the `stream-fetch`
//! reproduction — the timing model that turns the paper's four front-ends
//! into the IPC numbers of Figures 8–9 and Table 3.
//!
//! The methodology follows §4.1 of the paper:
//!
//! * **trace-driven correct path** — an architectural
//!   [`sfetch_trace::Executor`] supplies the committed instruction stream;
//! * **speculative front-end** — the selected [`sfetch_fetch::FetchEngine`]
//!   fetches its *own* predicted path through the
//!   [`sfetch_cfg::CodeImage`] (the static basic block dictionary), so
//!   wrong-path fetch pollutes and prefetches the I-cache and perturbs
//!   speculative predictor histories, which are repaired from per-branch
//!   checkpoints at recovery;
//! * **out-of-order back-end** — a ROB with issue/commit width equal to the
//!   pipe width, distance-coded register dependencies, execution latencies
//!   and a full L1D/L2/memory hierarchy; branches resolve at execute and
//!   misfetches at decode, so the misprediction penalty emerges from the
//!   16-stage pipeline of Table 2. Issue is driven by the event-driven
//!   [`scheduler::EventScheduler`] (completion wheel + ready queue), which
//!   touches each ROB entry O(1) times between dispatch and retire; the
//!   original per-cycle ROB scan survives behind
//!   [`ProcessorConfig::legacy_scan`] as a differential-testing oracle.
//!
//! The one-call entry point is [`sim::simulate`]:
//!
//! ```
//! use sfetch_cfg::{gen::{GenParams, ProgramGenerator}, layout, CodeImage};
//! use sfetch_core::{sim::simulate, ProcessorConfig};
//! use sfetch_fetch::EngineKind;
//!
//! let cfg = ProgramGenerator::new(GenParams::small(), 3).generate();
//! let image = CodeImage::build(&cfg, &layout::natural(&cfg));
//! let stats = simulate(
//!     &cfg, &image, EngineKind::Stream, ProcessorConfig::table2(4),
//!     /*seed*/ 7, /*warmup*/ 5_000, /*insts*/ 20_000,
//! );
//! assert!(stats.ipc() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod metrics;
pub mod obs;
pub mod processor;
pub mod scheduler;
pub mod sim;

pub use config::ProcessorConfig;
pub use metrics::{CycleBuckets, SimStats};
pub use obs::{NullObserver, Observer};
pub use processor::Processor;
pub use scheduler::EventScheduler;
pub use sfetch_fetch::FrontPipeline;
pub use sfetch_prefetch::{PrefetchConfig, PrefetchKind};
pub use sim::simulate;
