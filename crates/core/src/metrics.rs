//! Simulation metrics — the quantities the paper reports.

use sfetch_fetch::FetchEngineStats;
use sfetch_mem::{CacheStats, PrefetchStats};

/// Top-down cycle accounting: every elapsed cycle is attributed to
/// **exactly one** bucket by the processor's end-of-cycle classifier, so
/// `sum() == SimStats::cycles` holds by construction (and is
/// property-tested under random front pipelines for all four engines).
///
/// Classification priority, first match wins:
///
/// 1. [`commit`](CycleBuckets::commit) — at least one instruction retired.
/// 2. [`watchdog`](CycleBuckets::watchdog) — the forward-progress watchdog
///    resynchronized (expected never; see `SimStats::watchdog_resyncs`).
/// 3. [`hold_redirect`](CycleBuckets::hold_redirect) /
///    [`hold_decode`](CycleBuckets::hold_decode) — fetch held by a
///    front-pipeline squash-redirect penalty / decode-misfetch bubble.
/// 4. [`rob_full`](CycleBuckets::rob_full) — no ROB space for a fetch
///    group (back-end window full).
/// 5. [`backend`](CycleBuckets::backend) — fetch delivered correct-path
///    instructions but nothing retired: latency-bound in the back-end.
/// 6. Fetch supplied nothing: the engine's stall probe splits the cycle
///    into [`fetch_l2`](CycleBuckets::fetch_l2) /
///    [`fetch_mem`](CycleBuckets::fetch_mem) /
///    [`fetch_mshr`](CycleBuckets::fetch_mshr) (L1i demand-miss service
///    level — an L1i *hit* costs one cycle and never stalls, so there is
///    no separate L1i bucket), [`squash`](CycleBuckets::squash)
///    (wrong-path fetch awaiting a resolution, or the one-cycle
///    post-redirect restart bubble), or
///    [`ftq_empty`](CycleBuckets::ftq_empty) (the engine had no
///    prediction/fetch unit to consume).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleBuckets {
    /// At least one instruction committed this cycle.
    pub commit: u64,
    /// Correct-path fetch progressed but no commit: back-end latency
    /// (dependence chains, D-cache misses, execution latency).
    pub backend: u64,
    /// Fetch blocked on ROB occupancy (back-end window full).
    pub rob_full: u64,
    /// Fetch held by a decode-redirect (misfetch) bubble.
    pub hold_decode: u64,
    /// Fetch held by a post-squash redirect penalty.
    pub hold_redirect: u64,
    /// Fetch stalled on an L1i demand miss served by the L2.
    pub fetch_l2: u64,
    /// Fetch stalled on an L1i demand miss served by memory.
    pub fetch_mem: u64,
    /// Fetch demand miss could not allocate an MSHR (non-blocking L1i).
    pub fetch_mshr: u64,
    /// The engine had nothing to deliver: empty FTQ / no prediction /
    /// wrong path ran off the image.
    pub ftq_empty: u64,
    /// Squash recovery: wrong-path fetch while a misprediction awaits
    /// resolution, or the engine's one-cycle post-redirect restart.
    pub squash: u64,
    /// The forward-progress watchdog resynchronized fetch.
    pub watchdog: u64,
}

impl CycleBuckets {
    /// Bucket names, in [`CycleBuckets::to_array`] order.
    pub const NAMES: [&'static str; 11] = [
        "commit",
        "backend",
        "rob_full",
        "hold_decode",
        "hold_redirect",
        "fetch_l2",
        "fetch_mem",
        "fetch_mshr",
        "ftq_empty",
        "squash",
        "watchdog",
    ];

    /// The buckets as an array, ordered as [`CycleBuckets::NAMES`].
    pub fn to_array(&self) -> [u64; 11] {
        [
            self.commit,
            self.backend,
            self.rob_full,
            self.hold_decode,
            self.hold_redirect,
            self.fetch_l2,
            self.fetch_mem,
            self.fetch_mshr,
            self.ftq_empty,
            self.squash,
            self.watchdog,
        ]
    }

    /// Total attributed cycles — equals `SimStats::cycles` for any window
    /// measured by the processor.
    pub fn sum(&self) -> u64 {
        self.to_array().iter().sum()
    }

    /// Adds another window's buckets into this one.
    pub fn add(&mut self, o: &CycleBuckets) {
        self.commit += o.commit;
        self.backend += o.backend;
        self.rob_full += o.rob_full;
        self.hold_decode += o.hold_decode;
        self.hold_redirect += o.hold_redirect;
        self.fetch_l2 += o.fetch_l2;
        self.fetch_mem += o.fetch_mem;
        self.fetch_mshr += o.fetch_mshr;
        self.ftq_empty += o.ftq_empty;
        self.squash += o.squash;
        self.watchdog += o.watchdog;
    }
}

/// Aggregate statistics of one simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimStats {
    /// Committed instructions.
    pub committed: u64,
    /// Elapsed cycles.
    pub cycles: u64,
    /// Correct-path instructions accepted from the front-end.
    pub fetched_correct: u64,
    /// Cycles in which at least one correct-path instruction was fetched —
    /// the denominator of the paper's *fetch IPC* ("actual fetch width",
    /// Table 3).
    pub fetch_active_cycles: u64,
    /// Committed prediction-relevant branches: conditionals, returns and
    /// indirect jumps/calls (direct jumps/calls are trivially sequenced
    /// once identified and are excluded, as are layout fix-up jumps).
    pub branches: u64,
    /// Committed conditional instances.
    pub cond_branches: u64,
    /// Taken conditional instances.
    pub cond_taken: u64,
    /// Execute-time misprediction recoveries (direction or target wrong).
    pub mispredictions: u64,
    /// Decode-time redirects: direct always-taken branches the front-end
    /// did not identify (BTB/FTB/stream-predictor cold misses).
    pub misfetches: u64,
    /// Mispredictions whose resolved branch was conditional.
    pub mispred_cond: u64,
    /// Mispredictions whose resolved branch was a return.
    pub mispred_return: u64,
    /// Mispredictions whose resolved branch was an indirect jump/call.
    pub mispred_indirect: u64,
    /// Remaining mispredictions (unidentified direct branches resolved at
    /// execute, non-branch divergences).
    pub mispred_other: u64,
    /// Watchdog resynchronizations (should be ~0; counted for honesty).
    pub watchdog_resyncs: u64,
    /// Cycles the fetch stage was held by a front-pipeline redirect of
    /// either kind. Decomposes exactly as `hold_decode_cycles +
    /// hold_redirect_cycles` (asserted by the stall-accounting proptest).
    pub fetch_hold_cycles: u64,
    /// Subset of [`SimStats::fetch_hold_cycles`]: decode-redirect
    /// (misfetch) bubbles.
    pub hold_decode_cycles: u64,
    /// Subset of [`SimStats::fetch_hold_cycles`]: post-squash redirect
    /// penalties ([`sfetch_fetch::FrontPipeline::redirect_penalty`]; zero
    /// under the legacy front pipeline).
    pub hold_redirect_cycles: u64,
    /// Execute-time squashes that charged a redirect penalty (one per
    /// misprediction recovery when the penalty is non-zero; watchdog
    /// resyncs never charge).
    pub redirect_penalties: u64,
    /// Top-down cycle accounting: `buckets.sum() == cycles` always.
    pub buckets: CycleBuckets,
    /// Front-end statistics.
    pub engine: FetchEngineStats,
    /// L1 instruction cache statistics.
    pub l1i: CacheStats,
    /// L1 data cache statistics.
    pub l1d: CacheStats,
    /// Unified L2 statistics.
    pub l2: CacheStats,
    /// Instruction-prefetch counters (all zero with the blocking L1i).
    pub prefetch: PrefetchStats,
    /// Front-end storage cost in bits (Table 1's cost column).
    pub storage_bits: u64,
}

impl SimStats {
    /// Committed instructions per cycle — the paper's headline metric
    /// (Figures 8 and 9).
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Fetch IPC: correct-path instructions per *active* fetch cycle
    /// (Table 3's "Fetch" column).
    pub fn fetch_ipc(&self) -> f64 {
        if self.fetch_active_cycles == 0 {
            0.0
        } else {
            self.fetched_correct as f64 / self.fetch_active_cycles as f64
        }
    }

    /// Branch misprediction rate: execute-time recoveries per committed
    /// prediction-relevant branch (Table 3's "Mispred." column).
    pub fn mispred_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.branches as f64
        }
    }

    /// Accumulates another measurement window into this one, field by
    /// field — the inverse of windowed measurement: summing every
    /// window's stats reproduces the whole-run aggregate exactly (the
    /// time-series sink's sum-exactness contract rests on this).
    /// `storage_bits` is a configuration constant, not a counter, and is
    /// carried over from the incoming window.
    pub fn accumulate(&mut self, o: &SimStats) {
        self.committed += o.committed;
        self.cycles += o.cycles;
        self.fetched_correct += o.fetched_correct;
        self.fetch_active_cycles += o.fetch_active_cycles;
        self.branches += o.branches;
        self.cond_branches += o.cond_branches;
        self.cond_taken += o.cond_taken;
        self.mispredictions += o.mispredictions;
        self.misfetches += o.misfetches;
        self.mispred_cond += o.mispred_cond;
        self.mispred_return += o.mispred_return;
        self.mispred_indirect += o.mispred_indirect;
        self.mispred_other += o.mispred_other;
        self.watchdog_resyncs += o.watchdog_resyncs;
        self.fetch_hold_cycles += o.fetch_hold_cycles;
        self.hold_decode_cycles += o.hold_decode_cycles;
        self.hold_redirect_cycles += o.hold_redirect_cycles;
        self.redirect_penalties += o.redirect_penalties;
        self.buckets.add(&o.buckets);
        self.engine.predictor_lookups += o.engine.predictor_lookups;
        self.engine.predictor_hits += o.engine.predictor_hits;
        self.engine.units += o.engine.units;
        self.engine.unit_insts += o.engine.unit_insts;
        self.engine.tc_hits += o.engine.tc_hits;
        self.engine.tc_misses += o.engine.tc_misses;
        self.engine.icache_stall_cycles += o.engine.icache_stall_cycles;
        self.engine.stall_l2_cycles += o.engine.stall_l2_cycles;
        self.engine.stall_mem_cycles += o.engine.stall_mem_cycles;
        self.engine.stall_mshr_cycles += o.engine.stall_mshr_cycles;
        self.engine.shadow_installs += o.engine.shadow_installs;
        self.l1i.accesses += o.l1i.accesses;
        self.l1i.misses += o.l1i.misses;
        self.l1d.accesses += o.l1d.accesses;
        self.l1d.misses += o.l1d.misses;
        self.l2.accesses += o.l2.accesses;
        self.l2.misses += o.l2.misses;
        self.prefetch.issued += o.prefetch.issued;
        self.prefetch.useful += o.prefetch.useful;
        self.prefetch.late += o.prefetch.late;
        self.prefetch.polluting += o.prefetch.polluting;
        self.prefetch.dropped += o.prefetch.dropped;
        self.storage_bits = o.storage_bits;
    }

    /// Fraction of conditional instances not taken.
    pub fn cond_not_taken_ratio(&self) -> f64 {
        if self.cond_branches == 0 {
            0.0
        } else {
            1.0 - self.cond_taken as f64 / self.cond_branches as f64
        }
    }
}

/// Harmonic mean of positive values — how the paper aggregates IPC across
/// the SPECint2000 suite (§4.1).
pub fn harmonic_mean(values: &[f64]) -> f64 {
    let vals: Vec<f64> = values.iter().copied().filter(|v| *v > 0.0).collect();
    if vals.is_empty() {
        return 0.0;
    }
    vals.len() as f64 / vals.iter().map(|v| 1.0 / v).sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_zero_denominators() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.fetch_ipc(), 0.0);
        assert_eq!(s.mispred_rate(), 0.0);
        assert_eq!(s.cond_not_taken_ratio(), 0.0);
    }

    #[test]
    fn ratios_compute() {
        let s = SimStats {
            committed: 3000,
            cycles: 1000,
            fetched_correct: 5500,
            fetch_active_cycles: 1000,
            branches: 500,
            mispredictions: 10,
            cond_branches: 400,
            cond_taken: 100,
            ..Default::default()
        };
        assert!((s.ipc() - 3.0).abs() < 1e-12);
        assert!((s.fetch_ipc() - 5.5).abs() < 1e-12);
        assert!((s.mispred_rate() - 0.02).abs() < 1e-12);
        assert!((s.cond_not_taken_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn buckets_sum_and_names_agree() {
        let mut b = CycleBuckets::default();
        let arr = b.to_array();
        assert_eq!(arr.len(), CycleBuckets::NAMES.len());
        b.commit = 3;
        b.fetch_mem = 2;
        b.squash = 1;
        assert_eq!(b.sum(), 6);
        let mut c = b;
        c.add(&b);
        assert_eq!(c.sum(), 12);
        assert_eq!(c.commit, 6);
    }

    #[test]
    fn accumulate_sums_every_counter() {
        let mut a = SimStats { committed: 10, cycles: 7, ..Default::default() };
        a.buckets.commit = 4;
        a.l1i.misses = 2;
        a.engine.units = 3;
        a.prefetch.issued = 5;
        let mut total = SimStats::default();
        total.accumulate(&a);
        total.accumulate(&a);
        assert_eq!(total.committed, 20);
        assert_eq!(total.cycles, 14);
        assert_eq!(total.buckets.commit, 8);
        assert_eq!(total.l1i.misses, 4);
        assert_eq!(total.engine.units, 6);
        assert_eq!(total.prefetch.issued, 10);
    }

    #[test]
    fn harmonic_mean_matches_definition() {
        assert!((harmonic_mean(&[2.0, 2.0]) - 2.0).abs() < 1e-12);
        let hm = harmonic_mean(&[1.0, 2.0]);
        assert!((hm - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(harmonic_mean(&[]), 0.0);
        // Harmonic mean is dominated by the slowest benchmark.
        assert!(harmonic_mean(&[1.0, 10.0]) < 5.5);
    }
}
