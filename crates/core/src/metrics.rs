//! Simulation metrics — the quantities the paper reports.

use sfetch_fetch::FetchEngineStats;
use sfetch_mem::{CacheStats, PrefetchStats};

/// Aggregate statistics of one simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimStats {
    /// Committed instructions.
    pub committed: u64,
    /// Elapsed cycles.
    pub cycles: u64,
    /// Correct-path instructions accepted from the front-end.
    pub fetched_correct: u64,
    /// Cycles in which at least one correct-path instruction was fetched —
    /// the denominator of the paper's *fetch IPC* ("actual fetch width",
    /// Table 3).
    pub fetch_active_cycles: u64,
    /// Committed prediction-relevant branches: conditionals, returns and
    /// indirect jumps/calls (direct jumps/calls are trivially sequenced
    /// once identified and are excluded, as are layout fix-up jumps).
    pub branches: u64,
    /// Committed conditional instances.
    pub cond_branches: u64,
    /// Taken conditional instances.
    pub cond_taken: u64,
    /// Execute-time misprediction recoveries (direction or target wrong).
    pub mispredictions: u64,
    /// Decode-time redirects: direct always-taken branches the front-end
    /// did not identify (BTB/FTB/stream-predictor cold misses).
    pub misfetches: u64,
    /// Mispredictions whose resolved branch was conditional.
    pub mispred_cond: u64,
    /// Mispredictions whose resolved branch was a return.
    pub mispred_return: u64,
    /// Mispredictions whose resolved branch was an indirect jump/call.
    pub mispred_indirect: u64,
    /// Remaining mispredictions (unidentified direct branches resolved at
    /// execute, non-branch divergences).
    pub mispred_other: u64,
    /// Watchdog resynchronizations (should be ~0; counted for honesty).
    pub watchdog_resyncs: u64,
    /// Cycles the fetch stage was held by a front-pipeline redirect of
    /// either kind. Decomposes exactly as `hold_decode_cycles +
    /// hold_redirect_cycles` (asserted by the stall-accounting proptest).
    pub fetch_hold_cycles: u64,
    /// Subset of [`SimStats::fetch_hold_cycles`]: decode-redirect
    /// (misfetch) bubbles.
    pub hold_decode_cycles: u64,
    /// Subset of [`SimStats::fetch_hold_cycles`]: post-squash redirect
    /// penalties ([`sfetch_fetch::FrontPipeline::redirect_penalty`]; zero
    /// under the legacy front pipeline).
    pub hold_redirect_cycles: u64,
    /// Execute-time squashes that charged a redirect penalty (one per
    /// misprediction recovery when the penalty is non-zero; watchdog
    /// resyncs never charge).
    pub redirect_penalties: u64,
    /// Front-end statistics.
    pub engine: FetchEngineStats,
    /// L1 instruction cache statistics.
    pub l1i: CacheStats,
    /// L1 data cache statistics.
    pub l1d: CacheStats,
    /// Unified L2 statistics.
    pub l2: CacheStats,
    /// Instruction-prefetch counters (all zero with the blocking L1i).
    pub prefetch: PrefetchStats,
    /// Front-end storage cost in bits (Table 1's cost column).
    pub storage_bits: u64,
}

impl SimStats {
    /// Committed instructions per cycle — the paper's headline metric
    /// (Figures 8 and 9).
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Fetch IPC: correct-path instructions per *active* fetch cycle
    /// (Table 3's "Fetch" column).
    pub fn fetch_ipc(&self) -> f64 {
        if self.fetch_active_cycles == 0 {
            0.0
        } else {
            self.fetched_correct as f64 / self.fetch_active_cycles as f64
        }
    }

    /// Branch misprediction rate: execute-time recoveries per committed
    /// prediction-relevant branch (Table 3's "Mispred." column).
    pub fn mispred_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.branches as f64
        }
    }

    /// Fraction of conditional instances not taken.
    pub fn cond_not_taken_ratio(&self) -> f64 {
        if self.cond_branches == 0 {
            0.0
        } else {
            1.0 - self.cond_taken as f64 / self.cond_branches as f64
        }
    }
}

/// Harmonic mean of positive values — how the paper aggregates IPC across
/// the SPECint2000 suite (§4.1).
pub fn harmonic_mean(values: &[f64]) -> f64 {
    let vals: Vec<f64> = values.iter().copied().filter(|v| *v > 0.0).collect();
    if vals.is_empty() {
        return 0.0;
    }
    vals.len() as f64 / vals.iter().map(|v| 1.0 / v).sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_zero_denominators() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.fetch_ipc(), 0.0);
        assert_eq!(s.mispred_rate(), 0.0);
        assert_eq!(s.cond_not_taken_ratio(), 0.0);
    }

    #[test]
    fn ratios_compute() {
        let s = SimStats {
            committed: 3000,
            cycles: 1000,
            fetched_correct: 5500,
            fetch_active_cycles: 1000,
            branches: 500,
            mispredictions: 10,
            cond_branches: 400,
            cond_taken: 100,
            ..Default::default()
        };
        assert!((s.ipc() - 3.0).abs() < 1e-12);
        assert!((s.fetch_ipc() - 5.5).abs() < 1e-12);
        assert!((s.mispred_rate() - 0.02).abs() < 1e-12);
        assert!((s.cond_not_taken_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn harmonic_mean_matches_definition() {
        assert!((harmonic_mean(&[2.0, 2.0]) - 2.0).abs() < 1e-12);
        let hm = harmonic_mean(&[1.0, 2.0]);
        assert!((hm - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(harmonic_mean(&[]), 0.0);
        // Harmonic mean is dominated by the slowest benchmark.
        assert!(harmonic_mean(&[1.0, 10.0]) < 5.5);
    }
}
