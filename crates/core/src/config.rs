//! Processor configuration (Table 2's "common settings").

use sfetch_fetch::FrontPipeline;
use sfetch_prefetch::PrefetchConfig;

/// Back-end and pipeline parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcessorConfig {
    /// Pipe width: fetch, issue and commit width (Table 2: 2, 4, 8).
    pub width: usize,
    /// Pipeline depth in stages (Table 2: 16).
    pub depth: u32,
    /// Reorder-buffer capacity.
    pub rob_entries: usize,
    /// Front-pipeline timing model: fetch→decode→rename depth, post-squash
    /// redirect penalty, misfetch bubble, shadow-branch discovery. The
    /// default ([`FrontPipeline::legacy`]) reproduces the shared pre-
    /// per-engine model cycle-for-cycle;
    /// [`FrontPipeline::for_engine`](sfetch_fetch::FrontPipeline::for_engine)
    /// gives each engine the model its predictor organization implies.
    pub front: FrontPipeline,
    /// Cycles of no forward progress before the watchdog force-resyncs the
    /// front-end (safety net; ~never fires in practice).
    pub watchdog_cycles: u64,
    /// Use the legacy O(rob)-per-cycle issue scan instead of the
    /// event-driven scheduler. The two back-ends retire the bit-identical
    /// instruction/cycle sequence (asserted by the differential tests);
    /// the scan exists only as the oracle for that comparison and for
    /// measuring the scheduler's speedup (`perfstats --legacy-scan`).
    pub legacy_scan: bool,
    /// Instruction-prefetch subsystem: policy selection and L1i MSHR
    /// count. The default ([`PrefetchConfig::none`]) keeps the legacy
    /// blocking I-cache, bit-identical to the pre-prefetch simulator;
    /// `mshrs > 0` enables the non-blocking miss pipeline.
    pub prefetch: PrefetchConfig,
}

impl ProcessorConfig {
    /// The Table 2 configuration for a pipe width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not a power of two (the I-cache line geometry
    /// requires it).
    pub fn table2(width: usize) -> Self {
        assert!(width.is_power_of_two() && width >= 1, "width must be a power of two");
        ProcessorConfig {
            width,
            depth: 16,
            rob_entries: (32 * width).max(64),
            front: FrontPipeline::legacy(),
            watchdog_cycles: 10_000,
            legacy_scan: false,
            prefetch: PrefetchConfig::none(),
        }
    }

    /// Front-pipeline latency: cycles from fetch to execute eligibility.
    /// The front model owns the nominal fetch→rename depth (the legacy
    /// model's 12 = Table 2's 16-deep pipe minus four
    /// issue/execute/commit stages); deviations of [`Self::depth`] from
    /// the nominal 16 shift it, so depth sweeps keep working under any
    /// front model.
    pub fn front_latency(&self) -> u32 {
        (self.front.depth + self.depth).saturating_sub(16).max(1)
    }
}

impl Default for ProcessorConfig {
    fn default() -> Self {
        Self::table2(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_scales_rob_with_width() {
        assert_eq!(ProcessorConfig::table2(2).rob_entries, 64);
        assert_eq!(ProcessorConfig::table2(4).rob_entries, 128);
        assert_eq!(ProcessorConfig::table2(8).rob_entries, 256);
    }

    #[test]
    fn front_latency_leaves_backend_stages() {
        let c = ProcessorConfig::table2(8);
        assert_eq!(c.front_latency(), 12);
        assert_eq!(c.depth, 16);
        assert!(c.front.is_legacy(), "table2 defaults to the neutral front pipeline");
    }

    #[test]
    fn front_latency_follows_the_front_model() {
        let mut c = ProcessorConfig::table2(8);
        c.front.depth = 7;
        assert_eq!(c.front_latency(), 7);
        c.front.depth = 0;
        assert_eq!(c.front_latency(), 1, "depth is clamped to at least one stage");
        // Pipe-depth sweeps still shift the latency under any front model.
        c.front.depth = 12;
        c.depth = 24;
        assert_eq!(c.front_latency(), 20);
        c.depth = 8;
        assert_eq!(c.front_latency(), 4);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_odd_width() {
        ProcessorConfig::table2(3);
    }
}
