//! One-call simulation entry point.

use sfetch_cfg::{Cfg, CodeImage};
use sfetch_fetch::EngineKind;

use crate::config::ProcessorConfig;
use crate::metrics::SimStats;
use crate::processor::Processor;

/// Simulates `insts` committed instructions of `cfg` (laid out as `image`)
/// on the given front-end, after `warmup` instructions of cache/predictor
/// warmup that are excluded from the statistics.
///
/// `seed` selects the executor's input (the paper's *ref* input analogue;
/// profile-guided layouts should be trained with a different seed).
///
/// ```
/// use sfetch_cfg::{gen::{GenParams, ProgramGenerator}, layout, CodeImage};
/// use sfetch_core::{sim::simulate, ProcessorConfig};
/// use sfetch_fetch::EngineKind;
///
/// let cfg = ProgramGenerator::new(GenParams::small(), 1).generate();
/// let image = CodeImage::build(&cfg, &layout::natural(&cfg));
/// let s = simulate(&cfg, &image, EngineKind::Ev8, ProcessorConfig::table2(2), 5, 2_000, 10_000);
/// // Commit-width batching can overshoot by at most width - 1.
/// assert!(s.committed >= 10_000 && s.committed < 10_002);
/// ```
pub fn simulate(
    cfg: &Cfg,
    image: &CodeImage,
    kind: EngineKind,
    config: ProcessorConfig,
    seed: u64,
    warmup: u64,
    insts: u64,
) -> SimStats {
    let engine = kind.build_for(config.width, image.entry(), &config.prefetch, &config.front);
    let mut p = Processor::new(config, engine, cfg, image, seed);
    p.run(warmup);
    p.reset_stats();
    p.run(insts);
    p.stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfetch_cfg::gen::{GenParams, ProgramGenerator};
    use sfetch_cfg::layout;

    #[test]
    fn simulate_runs_exact_instruction_count() {
        let cfg = ProgramGenerator::new(GenParams::small(), 4).generate();
        let image = CodeImage::build(&cfg, &layout::natural(&cfg));
        let s = simulate(&cfg, &image, EngineKind::Ftb, ProcessorConfig::table2(4), 9, 1_000, 5_000);
        // Commit-width batching can slightly overshoot the target.
        assert!(s.committed >= 5_000 && s.committed < 5_000 + 4);
    }
}
