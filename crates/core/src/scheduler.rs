//! Event-driven issue scheduler: a completion wheel plus a ready queue.
//!
//! The scan-based back-end touched every in-flight ROB entry once per
//! cycle looking for issue candidates — O(rob) per cycle, quadratic in
//! flight-depth for back-end-bound windows where the ROB sits full. The
//! event-driven scheduler touches each entry O(1) times between dispatch
//! and retire instead:
//!
//! * **arrival queue** — dispatches enter the back-end a constant
//!   `front_latency` after fetch, so their wake cycles are already in
//!   FIFO order: a plain `VecDeque` popped while the head's `ready_at`
//!   has arrived. This keeps the overwhelmingly common wake (an entry
//!   clearing the front pipeline) a pointer increment instead of a
//!   wheel-slot access.
//! * **completion wheel** — a `Vec<Vec<Seq>>` indexed by `cycle %
//!   horizon`, holding entries blocked until a *known* future cycle (a
//!   producer's completion). Each simulated cycle drains exactly one
//!   slot.
//! * **ready queue** — a min-heap on sequence number holding entries
//!   whose obstacles have all cleared. The processor pops at most
//!   `width` per cycle, oldest first — the same set, in the same order,
//!   as the scan would have issued (the scan also walked oldest-first
//!   and stopped at `width`).
//! * **dependency waiters** — an entry blocked on a producer that has
//!   not even issued yet (completion cycle unknown) registers in the
//!   producer's waiter list; when the producer issues, its waiters are
//!   parked in the wheel slot of its completion cycle. The processor
//!   keeps a `has_waiters` flag on each ROB entry so issues that nobody
//!   waits on (the common case) never touch the waiter ring.
//!
//! At any instant an unissued entry holds **at most one** pending token
//! (arrival queue, one wheel slot, *or* one waiter registration); each
//! wake re-examines all of its obstacles and either re-parks on the
//! next one or enters the ready queue. Squashes do not eagerly unlink
//! tokens: sequence numbers are never reused and every pop validates
//! the token against the live ROB in O(1) — a squashed entry's token
//! simply no longer resolves and is dropped (see
//! [`Processor`](crate::Processor) for the validation). The
//! differential tests in `crates/core/tests/event_scheduler.rs` and the
//! squash proptest in `tests/tests/squash_scheduler.rs` pin this
//! machinery cycle-for-cycle against the legacy scan.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Instruction sequence number (the ROB entry identity; never reused).
pub type Seq = u64;

/// The arrival-queue + wheel + ready-queue scheduler state.
///
/// The structure is deliberately free of per-cycle allocation on the
/// steady path: wheel slots and waiter lists are drained with
/// [`Vec::append`] so their capacity is retained across reuse, and the
/// queues only grow to their high-water marks.
#[derive(Debug)]
pub struct EventScheduler {
    /// Dispatched entries in FIFO (= wake-cycle) order, awaiting their
    /// front-pipeline arrival.
    arrivals: VecDeque<Seq>,
    /// `wheel[cycle % horizon]` holds the entries to wake at `cycle`.
    wheel: Vec<Vec<Seq>>,
    /// Entries whose obstacles have cleared, ordered oldest-first.
    ready: BinaryHeap<Reverse<Seq>>,
    /// `waiters[producer % ring]`: consumers blocked on an unissued
    /// producer's unknown completion cycle.
    waiters: Vec<Vec<Seq>>,
}

impl EventScheduler {
    /// Creates a scheduler with a wake horizon of `horizon` cycles and a
    /// waiter ring of `ring` sequence numbers. `horizon` bounds how far
    /// ahead a wake can be parked directly (farther wakes re-park when
    /// they fire early); `ring` must exceed the largest sequence-number
    /// span simultaneously in flight.
    pub fn new(horizon: usize, ring: usize) -> Self {
        assert!(horizon >= 2 && ring >= 2, "degenerate scheduler geometry");
        EventScheduler {
            arrivals: VecDeque::new(),
            wheel: vec![Vec::new(); horizon],
            ready: BinaryHeap::new(),
            waiters: vec![Vec::new(); ring],
        }
    }

    /// Enqueues a freshly dispatched `seq` awaiting front-pipeline
    /// arrival. Dispatch latency is constant, so successive calls are
    /// already in wake-cycle order.
    pub fn push_arrival(&mut self, seq: Seq) {
        self.arrivals.push_back(seq);
    }

    /// The oldest not-yet-arrived dispatch, if any.
    pub fn peek_arrival(&self) -> Option<Seq> {
        self.arrivals.front().copied()
    }

    /// Pops the oldest dispatch (the caller decided its wake cycle came,
    /// or that the token is stale).
    pub fn pop_arrival(&mut self) -> Option<Seq> {
        self.arrivals.pop_front()
    }

    /// Parks `seq` to wake at cycle `at` (seen from cycle `now`).
    ///
    /// Wakes farther out than the horizon are clamped to the farthest
    /// slot; the early wake re-examines its obstacle and re-parks, so
    /// arbitrary latencies stay correct at a small constant cost.
    pub fn park(&mut self, seq: Seq, at: u64, now: u64) {
        debug_assert!(at > now, "wakes must be in the future (at={at}, now={now})");
        let horizon = self.wheel.len() as u64;
        let slot_cycle = if at - now >= horizon { now + horizon - 1 } else { at };
        self.wheel[(slot_cycle % horizon) as usize].push(seq);
    }

    /// Drains the wheel slot for cycle `now` into `out` (appending).
    pub fn drain_due(&mut self, now: u64, out: &mut Vec<Seq>) {
        let horizon = self.wheel.len() as u64;
        let slot = &mut self.wheel[(now % horizon) as usize];
        if !slot.is_empty() {
            out.append(slot);
        }
    }

    /// Registers `consumer` to be woken when `producer` issues.
    pub fn wait_on(&mut self, consumer: Seq, producer: Seq) {
        let ring = self.waiters.len() as u64;
        self.waiters[(producer % ring) as usize].push(consumer);
    }

    /// Drains the consumers waiting on `producer` into `out` (appending).
    /// Called when `producer` issues and its completion cycle becomes
    /// known; the caller re-parks each waiter at that cycle.
    pub fn take_waiters(&mut self, producer: Seq, out: &mut Vec<Seq>) {
        let ring = self.waiters.len() as u64;
        out.append(&mut self.waiters[(producer % ring) as usize]);
    }

    /// Enqueues `seq` as ready to issue.
    pub fn push_ready(&mut self, seq: Seq) {
        self.ready.push(Reverse(seq));
    }

    /// Pops the oldest ready entry, if any. The caller must validate the
    /// token against the live ROB (it may have been squashed since).
    pub fn pop_ready(&mut self) -> Option<Seq> {
        self.ready.pop().map(|Reverse(s)| s)
    }

    /// Number of entries currently in the ready queue (including tokens
    /// stale-ified by squashes that have not been popped yet).
    pub fn ready_len(&self) -> usize {
        self.ready.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wheel_wakes_at_the_parked_cycle() {
        let mut s = EventScheduler::new(8, 16);
        s.park(1, 5, 0);
        s.park(2, 5, 0);
        s.park(3, 6, 0);
        let mut out = Vec::new();
        for now in 0..5 {
            s.drain_due(now, &mut out);
            assert!(out.is_empty(), "nothing due at {now}");
        }
        s.drain_due(5, &mut out);
        assert_eq!(out, vec![1, 2]);
        out.clear();
        s.drain_due(6, &mut out);
        assert_eq!(out, vec![3]);
    }

    #[test]
    fn beyond_horizon_wakes_clamp_to_farthest_slot() {
        let mut s = EventScheduler::new(8, 16);
        s.park(9, 1_000, 0); // far beyond the 8-cycle horizon
        let mut out = Vec::new();
        for now in 0..7 {
            s.drain_due(now, &mut out);
            assert!(out.is_empty(), "nothing due at {now}");
        }
        s.drain_due(7, &mut out); // now + horizon - 1
        assert_eq!(out, vec![9]);
    }

    #[test]
    fn ready_queue_pops_oldest_first() {
        let mut s = EventScheduler::new(4, 8);
        s.push_ready(30);
        s.push_ready(10);
        s.push_ready(20);
        assert_eq!(s.ready_len(), 3);
        assert_eq!(s.pop_ready(), Some(10));
        assert_eq!(s.pop_ready(), Some(20));
        assert_eq!(s.pop_ready(), Some(30));
        assert_eq!(s.pop_ready(), None);
    }

    #[test]
    fn waiters_round_trip_through_the_ring() {
        let mut s = EventScheduler::new(4, 8);
        s.wait_on(5, 3);
        s.wait_on(6, 3);
        s.wait_on(7, 4);
        let mut out = Vec::new();
        s.take_waiters(3, &mut out);
        assert_eq!(out, vec![5, 6]);
        out.clear();
        s.take_waiters(3, &mut out);
        assert!(out.is_empty(), "waiters drain exactly once");
        s.take_waiters(4, &mut out);
        assert_eq!(out, vec![7]);
    }
}
