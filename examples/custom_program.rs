//! Building a program by hand with `CfgBuilder` and simulating it — the
//! route for users who want to study a specific control-flow shape rather
//! than a generated workload.
//!
//! The program: an outer loop over a three-way dispatch (switch) where one
//! arm calls a helper function. We then ask: how well does each front-end
//! sequence it?
//!
//! ```text
//! cargo run --release -p sfetch-core --example custom_program
//! ```

use sfetch_cfg::{layout, CfgBuilder, CodeImage, CondBehavior, IndirectSelect, TripCount};
use sfetch_core::{simulate, ProcessorConfig};
use sfetch_fetch::EngineKind;

fn main() {
    let mut b = CfgBuilder::new();
    let main_fn = b.add_func("main");
    let helper = b.add_func("helper");

    // helper: a short biased hammock, then return.
    let h0 = b.add_block(helper, 4);
    let h_then = b.add_block(helper, 3);
    let h_exit = b.add_block(helper, 2);
    b.set_cond(h0, h_then, h_exit, CondBehavior::Bernoulli { p_taken: 0.08 });
    b.set_fallthrough(h_then, h_exit);
    b.set_return(h_exit);

    // main: loop { switch { arm0 | arm1(call helper) | arm2 } }
    let head = b.add_block(main_fn, 5);
    let arm0 = b.add_block(main_fn, 6);
    let arm1 = b.add_block(main_fn, 2);
    let ret_pt = b.add_block(main_fn, 2);
    let arm2 = b.add_block(main_fn, 4);
    let latch = b.add_block(main_fn, 1);
    let exit = b.add_block(main_fn, 1);
    // The dispatch rotates deterministically 0,1,0,2 — path-predictable.
    b.set_indirect_jump(
        head,
        vec![(arm0, 50), (arm1, 30), (arm2, 20)],
        IndirectSelect::Cyclic(vec![0, 1, 0, 2]),
    );
    b.set_fallthrough(arm0, latch);
    b.set_call(arm1, helper, ret_pt);
    b.set_fallthrough(ret_pt, latch);
    b.set_fallthrough(arm2, latch);
    b.set_cond(latch, head, exit, CondBehavior::Loop { trip: TripCount::Fixed(1 << 30) });
    b.set_return(exit);

    let cfg = b.finish().expect("hand-built CFG is valid");
    let image = CodeImage::build(&cfg, &layout::natural(&cfg));
    println!("custom program: {} instructions\n", image.len_insts());

    println!("{:<18} {:>7} {:>10} {:>9}", "engine", "IPC", "fetchIPC", "mispred");
    for kind in EngineKind::ALL {
        let s = simulate(
            &cfg,
            &image,
            kind,
            ProcessorConfig::table2(4),
            11,
            50_000,
            300_000,
        );
        println!(
            "{:<18} {:>7.3} {:>10.2} {:>8.2}%",
            kind.to_string(),
            s.ipc(),
            s.fetch_ipc(),
            s.mispred_rate() * 100.0
        );
    }
    println!(
        "\nNote how the path-correlated predictors (streams, traces) track the\n\
         cyclic dispatch targets that a plain BTB can only chase."
    );
}
