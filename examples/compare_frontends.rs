//! Head-to-head comparison of the four front-ends on one benchmark —
//! a miniature of the paper's Table 3 row, with the cost column.
//!
//! ```text
//! cargo run --release -p sfetch-core --example compare_frontends [bench]
//! ```

use sfetch_core::{simulate, ProcessorConfig};
use sfetch_fetch::EngineKind;
use sfetch_mem::cost::fmt_kb;
use sfetch_workloads::{suite, LayoutChoice};

fn main() {
    let bench = std::env::args().nth(1).unwrap_or_else(|| "vortex".to_owned());
    let spec = suite::by_name(&bench)
        .unwrap_or_else(|| panic!("unknown benchmark {bench}; try gzip, gcc, crafty, …"));
    let w = suite::build(spec);
    println!("benchmark: {bench} (optimized layout, 8-wide, 1M instructions)\n");
    println!(
        "{:<18} {:>7} {:>9} {:>9} {:>10} {:>10}",
        "engine", "IPC", "fetchIPC", "mispred", "unit size", "storage"
    );
    for kind in EngineKind::ALL {
        let s = simulate(
            w.cfg(),
            w.image(LayoutChoice::Optimized),
            kind,
            ProcessorConfig::table2(8),
            w.ref_seed(),
            200_000,
            1_000_000,
        );
        println!(
            "{:<18} {:>7.3} {:>9.2} {:>8.2}% {:>10.1} {:>10}",
            kind.to_string(),
            s.ipc(),
            s.fetch_ipc(),
            s.mispred_rate() * 100.0,
            s.engine.mean_unit_len(),
            fmt_kb(s.storage_bits),
        );
    }
    println!(
        "\nThe stream front-end delivers trace-cache-class performance from a\n\
         single instruction path and one predictor — the paper's cost argument."
    );
}
