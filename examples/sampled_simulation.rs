//! Sampled vs full simulation on the long-horizon phased workload.
//!
//! Runs the phased workload (rotating hot sets that overflow the L1i)
//! both straight through and under SMARTS-style systematic sampling
//! (`sfetch-sample`), printing the IPC estimate, its confidence interval
//! and the wall-clock speedup. Pass a total instruction count (default
//! 20M):
//!
//! ```text
//! cargo run --release -p sfetch-tests --example sampled_simulation -- 50000000
//! ```

use std::time::Instant;

use sfetch_core::ProcessorConfig;
use sfetch_fetch::EngineKind;
use sfetch_sample::{run_full_detailed, run_sampled, SampleConfig};
use sfetch_workloads::{phased, LayoutChoice};

fn main() {
    let w = phased::long_workload();
    let img = w.image(LayoutChoice::Optimized);
    let pc = ProcessorConfig::table2(8);
    let total: u64 =
        std::env::args().nth(1).and_then(|v| v.parse().ok()).unwrap_or(20_000_000);

    let t0 = Instant::now();
    let full = run_full_detailed(img, EngineKind::Stream, pc, w.ref_seed(), 0, total);
    let full_wall = t0.elapsed().as_secs_f64();
    println!("full detailed run: IPC {:.4} in {full_wall:.2}s", full.ipc());

    let scfg = SampleConfig::default();
    let t1 = Instant::now();
    let run = run_sampled(img, EngineKind::Stream, pc, w.ref_seed(), total, &scfg);
    let wall = t1.elapsed().as_secs_f64();
    let est = run.estimate;
    println!(
        "sampled ({} windows of U={}, Wf={}, Wd={}, D={}):",
        run.points.len(),
        scfg.interval,
        scfg.warm_func,
        scfg.warm_detail,
        scfg.measure
    );
    println!(
        "  IPC {:.4} [{:.4}, {:.4}] @{} in {wall:.2}s — {:+.2}% vs full, {:.1}× speedup",
        est.ipc,
        est.ipc_lo,
        est.ipc_hi,
        est.confidence,
        100.0 * (est.ipc - full.ipc()) / full.ipc(),
        full_wall / wall
    );
    println!("\nper-window IPC / fetch-stall cycles:");
    for p in &run.points {
        println!(
            "  w{:<3} @{:>9}: ipc {:.4}  stalls {:>6}  mispredicts {:>5}",
            p.window,
            p.start_inst,
            p.ipc(),
            p.stall_cycles,
            p.mispredictions
        );
    }
}
