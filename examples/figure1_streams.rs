//! Figure 1 of the paper, executable: build the loop + hammock control-flow
//! graph, lay it out as the figure does, run it, and print the instruction
//! streams that emerge.
//!
//! ```text
//! cargo run --release -p sfetch-core --example figure1_streams
//! ```

use std::collections::BTreeMap;

use sfetch_cfg::{layout, CodeImage};
use sfetch_trace::{Executor, StreamExtractor};
use sfetch_workloads::microbench::figure1;

fn main() {
    let (cfg, [a, b, c, d]) = figure1();
    let image = CodeImage::build(&cfg, &layout::natural(&cfg));

    let name_of = |addr| {
        if addr == image.block_addr(a) {
            "A"
        } else if addr == image.block_addr(b) {
            "B"
        } else if addr == image.block_addr(c) {
            "C"
        } else if addr == image.block_addr(d) {
            "D"
        } else {
            "?"
        }
    };
    println!("code layout (as in Fig. 1): A @ {}, B @ {}, D @ {}, C @ {}",
        image.block_addr(a), image.block_addr(b), image.block_addr(d), image.block_addr(c));

    // Execute and segment the committed path into streams.
    let mut extractor = StreamExtractor::new();
    let mut histogram: BTreeMap<(String, u32), u64> = BTreeMap::new();
    for inst in Executor::new(&cfg, &image, 42).take(200_000) {
        if let Some(s) = extractor.push(&inst) {
            let key = (format!("{} (start {})", name_of(s.start), s.start), s.len);
            *histogram.entry(key).or_insert(0) += 1;
        }
    }

    println!("\nobserved streams (start block, length -> occurrences):");
    for ((start, len), count) in &histogram {
        println!("  stream at {start:>22}, {len:>2} insts: {count:>6}x");
    }
    println!(
        "\nThe frequent path A→B→D forms one long stream through a not-taken branch;\n\
         the infrequent arm C is its own short stream jumping back into D — exactly\n\
         the streams enumerated in the paper's Figure 1."
    );
}
