//! The layout-optimization story of the paper, on one benchmark: profile a
//! program with a training input, re-lay it out Pettis–Hansen style, and
//! watch the stream front-end benefit most.
//!
//! ```text
//! cargo run --release -p sfetch-core --example layout_optimization
//! ```

use sfetch_core::{simulate, ProcessorConfig};
use sfetch_fetch::EngineKind;
use sfetch_trace::TraceStats;
use sfetch_workloads::{suite, LayoutChoice};

fn main() {
    // `crafty`: a large, branchy member of the suite.
    let w = suite::build(suite::by_name("crafty").expect("known benchmark"));

    // Characterize both binaries (the paper's §2.4/§3.2 numbers).
    for choice in [LayoutChoice::Base, LayoutChoice::Optimized] {
        let image = w.image(choice);
        let st = TraceStats::collect(
            sfetch_trace::Executor::new(w.cfg(), image, w.ref_seed()),
            500_000,
        );
        println!(
            "{choice:<10}: {:>5.1}% of conditional instances not taken, mean stream {:>5.1} insts, \
             {} fix-up jumps executed",
            st.cond_not_taken_ratio() * 100.0,
            st.streams.mean_len(),
            st.fixup_jumps
        );
    }

    // Simulate the stream engine on both and report the speedup.
    println!("\n8-wide IPC by front-end:");
    println!("{:<18} {:>8} {:>10} {:>9}", "engine", "base", "optimized", "gain");
    for kind in EngineKind::ALL {
        let run = |choice| {
            simulate(
                w.cfg(),
                w.image(choice),
                kind,
                ProcessorConfig::table2(8),
                w.ref_seed(),
                200_000,
                1_000_000,
            )
            .ipc()
        };
        let base = run(LayoutChoice::Base);
        let opt = run(LayoutChoice::Optimized);
        println!(
            "{:<18} {:>8.3} {:>10.3} {:>8.1}%",
            kind.to_string(),
            base,
            opt,
            (opt / base - 1.0) * 100.0
        );
    }
    println!("\nThe stream front-end is designed around exactly these effects (§3).");
}
