//! Quickstart: generate a synthetic program, lay it out, and simulate it on
//! the stream fetch architecture.
//!
//! ```text
//! cargo run --release -p sfetch-core --example quickstart
//! ```

use sfetch_cfg::gen::{GenParams, ProgramGenerator};
use sfetch_cfg::{layout, CodeImage};
use sfetch_core::{simulate, ProcessorConfig};
use sfetch_fetch::EngineKind;

fn main() {
    // 1. Generate a small synthetic integer program (deterministic in the
    //    seed), and materialize it at concrete addresses.
    let cfg = ProgramGenerator::new(GenParams::default_int(), 2024).generate();
    let image = CodeImage::build(&cfg, &layout::natural(&cfg));
    println!(
        "program: {} functions, {} blocks, {} instructions ({} KB of code)",
        cfg.num_funcs(),
        cfg.num_blocks(),
        image.len_insts(),
        image.code_bytes() >> 10
    );

    // 2. Simulate 1M instructions on an 8-wide processor with the paper's
    //    stream front-end (Table 2 configuration throughout).
    let stats = simulate(
        &cfg,
        &image,
        EngineKind::Stream,
        ProcessorConfig::table2(8),
        /* ref seed */ 7,
        /* warmup  */ 200_000,
        /* insts   */ 1_000_000,
    );

    // 3. Report the metrics the paper reports.
    println!("\nstream fetch architecture, 8-wide:");
    println!("  IPC                 {:.3}", stats.ipc());
    println!("  fetch IPC           {:.2}", stats.fetch_ipc());
    println!("  mispredict rate     {:.2}%", stats.mispred_rate() * 100.0);
    println!("  mean fetch unit     {:.1} instructions", stats.engine.mean_unit_len());
    println!("  L1I miss rate       {:.3}%", stats.l1i.miss_rate() * 100.0);
    println!("  L1D miss rate       {:.2}%", stats.l1d.miss_rate() * 100.0);
}
